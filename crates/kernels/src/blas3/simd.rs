//! Explicit-SIMD GEMM microkernels with one-time runtime dispatch, for
//! all four element types of the engine (`f32` / `f64` / `C32` / `C64`).
//!
//! The packed loop nest in [`super`] is ISA-agnostic: it packs `op(A)`
//! into `mr`-row strips and `op(B)` into `nr`-column strips, then calls
//! one [`MicroKernel`] per register tile. This module owns the tile
//! shapes and their implementations:
//!
//! | type  | `scalar` | `avx2`  | `avx512` | notes |
//! |-------|----------|---------|----------|-------|
//! | `f64` | 16 x 4   | 4 x 12  | 24 x 8   | avx512: 3 zmm per column x 8 + 3 loads + 1 broadcast = 28 of 32 regs |
//! | `f32` | 16 x 4   | 8 x 12  | 48 x 8   | lane-doubled ports of the `f64` tiles |
//! | `C64` | 8 x 4    | 2 x 6   | 8 x 4    | dual accumulators: 2x regs per tile element |
//! | `C32` | 8 x 4    | 4 x 6   | 16 x 4   | dual accumulators at 2x the `C64` lane count |
//!
//! Cache blocking (`mc`/`nc`) is derived per tile shape and element
//! size in [`super::blocking`]; `KC` is shared by everything.
//!
//! **Dispatch** happens once per element type, at the first
//! `gemm`-family call: the `TSEIG_SIMD` environment variable (`avx512`
//! / `avx2` / `scalar`) is honored when the requested ISA is available,
//! otherwise detection order is `avx512` → `avx2` → `scalar` via
//! [`std::arch::is_x86_feature_detected!`]. [`SimdScalar::available`]
//! exposes every kernel the machine supports so tests and benches can
//! run each path explicitly in one process (the env override is a
//! process-wide choice). The historical free functions [`available`],
//! [`by_name`] and [`selected`] remain the `f64` entry points.
//!
//! **Numerical contract (real types):** for a fixed problem every
//! kernel of a type produces *bitwise identical* results. Each `C(i,j)`
//! is a k-ordered chain of fused multiply-adds regardless of the tile
//! shape (packing only regroups rows/columns, never the `k` loop), and
//! the writeback computes `c + alpha * acc` with a separate multiply
//! and add (not an FMA) to match the scalar path rounding-for-rounding.
//!
//! **Numerical contract (complex types):** every complex kernel keeps
//! *two* k-ordered real-FMA accumulator chains per `C(i,j)` component:
//!
//! ```text
//! s1.re += a.re * b.re      s1.im += a.im * b.re      (chain 1)
//! s2.re += a.im * b.im      s2.im += a.re * b.im      (chain 2)
//! t = (s1.re - s2.re, s1.im + s2.im);   c += alpha * t
//! ```
//!
//! This is exactly the register shape the SIMD kernels want — chain 1
//! is `fmadd(a, broadcast(b.re))` on the interleaved vector, chain 2 is
//! `fmadd(pair_swap(a), broadcast(b.im))` — and the scalar kernels run
//! the same two chains with scalar `mul_add`, so all dispatch paths of
//! a complex type are bitwise identical too. The combine + writeback is
//! always done in scalar code (SIMD kernels spill their accumulators to
//! a stack buffer first; ~0.4% of the FMA work at `kc = 256`), which
//! removes any vectorized-final-rounding divergence by construction.
//! Conjugation never reaches the kernels: the pack step folds it in via
//! [`super::Op`]. The differential proptests in `tests/simd_dispatch.rs`
//! and `tests/complex_dispatch.rs` pin all of this down.

use super::blocking::BlockingParams;
use std::sync::OnceLock;
use tseig_matrix::{c32, c64, Scalar, C32, C64};

/// Signature every microkernel implements: one `mr x nr` tile of
/// `C += alpha * Ap * Bp` from packed strips. `ap` is the `mr * kc`
/// zero-padded A strip, `bp` the `nr * kc` B strip; edge tiles compute
/// on the padding and store only the `mr_eff x nr_eff` valid corner.
/// Generic over the element type so the one packed loop nest in
/// [`super::engine`] serves all four element types; the default keeps
/// every pre-generic `f64` signature reading exactly as before.
pub type MicroFn<T = f64> = fn(
    kc: usize,
    alpha: T,
    ap: &[T],
    bp: &[T],
    c: &mut [T],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
);

/// One dispatchable register-tile kernel plus the cache blocking that
/// fits its shape (`mc` a multiple of `mr`, `nc` a multiple of `nr`;
/// `KC` is shared so every kernel splits the `k` loop identically and
/// stays bitwise-comparable). Generic over the element type; the
/// `f64` default keeps the historical name for the real dispatch table.
pub struct MicroKernel<T: 'static = f64> {
    /// Dispatch name (`avx512` / `avx2` / `scalar`), matching the
    /// `TSEIG_SIMD` values.
    pub name: &'static str,
    /// Register-tile height.
    pub mr: usize,
    /// Register-tile width.
    pub nr: usize,
    /// Row-block size of the packed `A` panel (about half an L2).
    pub mc: usize,
    /// Column-block size of the packed `B` panel (an L3 slice).
    pub nc: usize,
    func: MicroFn<T>,
}

impl<T: 'static> MicroKernel<T> {
    /// Build a kernel descriptor from explicit blocking values.
    pub const fn new(
        name: &'static str,
        mr: usize,
        nr: usize,
        mc: usize,
        nc: usize,
        func: MicroFn<T>,
    ) -> Self {
        MicroKernel {
            name,
            mr,
            nr,
            mc,
            nc,
            func,
        }
    }

    /// Build a kernel descriptor with its cache blocking taken from a
    /// [`BlockingParams`] derivation — the tile shape and the blocking
    /// come from the same place and cannot drift apart. Every static in
    /// this module's dispatch tables is built this way.
    pub const fn from_blocking(name: &'static str, b: BlockingParams, func: MicroFn<T>) -> Self {
        MicroKernel {
            name,
            mr: b.mr,
            nr: b.nr,
            mc: b.mc,
            nc: b.nc,
            func,
        }
    }

    /// Run the kernel on one packed tile.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        kc: usize,
        alpha: T,
        ap: &[T],
        bp: &[T],
        c: &mut [T],
        ldc: usize,
        mr_eff: usize,
        nr_eff: usize,
    ) {
        (self.func)(kc, alpha, ap, bp, c, ldc, mr_eff, nr_eff)
    }
}

// ---------------------------------------------------------------------------
// Dispatch tables
// ---------------------------------------------------------------------------

/// Portable `f64` fallback tile, also the oracle the SIMD paths are
/// differential-tested against. Shape matches the pre-SIMD packed
/// engine (two 8-wide FMA rows by four columns).
pub static SCALAR: MicroKernel = MicroKernel::from_blocking(
    "scalar",
    BlockingParams::for_scalar::<f64>(16, 4),
    mk_scalar,
);

/// AVX2+FMA `f64` tile.
#[cfg(target_arch = "x86_64")]
pub static AVX2: MicroKernel = MicroKernel::from_blocking(
    "avx2",
    BlockingParams::for_scalar::<f64>(4, 12),
    mk_avx2_entry,
);

/// AVX-512F `f64` tile.
#[cfg(target_arch = "x86_64")]
pub static AVX512: MicroKernel = MicroKernel::from_blocking(
    "avx512",
    BlockingParams::for_scalar::<f64>(24, 8),
    mk_avx512_entry,
);

/// Portable `f32` fallback tile (same shape as the `f64` one; the
/// compiler autovectorizes at twice the lane count).
pub static SCALAR_F32: MicroKernel<f32> = MicroKernel::from_blocking(
    "scalar",
    BlockingParams::for_scalar::<f32>(16, 4),
    mk_scalar_f32,
);

/// AVX2+FMA `f32` tile: the 4x12 `f64` tile at 8 lanes per ymm.
#[cfg(target_arch = "x86_64")]
pub static AVX2_F32: MicroKernel<f32> = MicroKernel::from_blocking(
    "avx2",
    BlockingParams::for_scalar::<f32>(8, 12),
    mk_avx2_f32_entry,
);

/// AVX-512F `f32` tile: the 24x8 `f64` tile at 16 lanes per zmm.
#[cfg(target_arch = "x86_64")]
pub static AVX512_F32: MicroKernel<f32> = MicroKernel::from_blocking(
    "avx512",
    BlockingParams::for_scalar::<f32>(48, 8),
    mk_avx512_f32_entry,
);

/// Portable `C64` tile: the dual-accumulator chains on scalar
/// `f64::mul_add` (512-byte accumulator footprint, same as the real
/// scalar tile). Also the complex differential-testing oracle.
pub static SCALAR_C64: MicroKernel<C64> = MicroKernel::from_blocking(
    "scalar",
    BlockingParams::for_scalar::<C64>(8, 4),
    mk_scalar_c64,
);

/// AVX2+FMA `C64` tile: 2 complex per ymm, 6 columns — 12 accumulator
/// ymm + the `A` vector, its pair-swap, and two broadcasts fill the
/// 16-register file (a 4x3 shape would need 18).
#[cfg(target_arch = "x86_64")]
pub static AVX2_C64: MicroKernel<C64> = MicroKernel::from_blocking(
    "avx2",
    BlockingParams::for_scalar::<C64>(2, 6),
    mk_avx2_c64_entry,
);

/// AVX-512F `C64` tile: 8 complex rows (2 zmm) x 4 columns — 16
/// accumulator zmm (two chains x 2 registers x 4 columns), 16 FMAs per
/// `k` step against 12 load-port ops, so the loop is FMA-bound.
#[cfg(target_arch = "x86_64")]
pub static AVX512_C64: MicroKernel<C64> = MicroKernel::from_blocking(
    "avx512",
    BlockingParams::for_scalar::<C64>(8, 4),
    mk_avx512_c64_entry,
);

/// Portable `C32` tile: same shape as the `C64` one at `f32` components.
pub static SCALAR_C32: MicroKernel<C32> = MicroKernel::from_blocking(
    "scalar",
    BlockingParams::for_scalar::<C32>(8, 4),
    mk_scalar_c32,
);

/// AVX2+FMA `C32` tile: the `C64` 2x6 shape at twice the lane count.
#[cfg(target_arch = "x86_64")]
pub static AVX2_C32: MicroKernel<C32> = MicroKernel::from_blocking(
    "avx2",
    BlockingParams::for_scalar::<C32>(4, 6),
    mk_avx2_c32_entry,
);

/// AVX-512F `C32` tile: the `C64` 8x4 shape at twice the lane count.
#[cfg(target_arch = "x86_64")]
pub static AVX512_C32: MicroKernel<C32> = MicroKernel::from_blocking(
    "avx512",
    BlockingParams::for_scalar::<C32>(16, 4),
    mk_avx512_c32_entry,
);

/// Every `f64` kernel this machine can execute, best first. Tests and
/// benches iterate this to exercise each dispatch path in-process.
/// (Kept as a free function for back-compat; [`SimdScalar::available`]
/// is the per-type generalization.)
pub fn available() -> &'static [&'static MicroKernel] {
    static AVAIL: OnceLock<Vec<&'static MicroKernel>> = OnceLock::new();
    AVAIL.get_or_init(|| {
        #[allow(unused_mut)]
        let mut v: Vec<&'static MicroKernel> = Vec::new();
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f") {
                v.push(&AVX512);
            }
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                v.push(&AVX2);
            }
        }
        v.push(&SCALAR);
        v
    })
}

/// Look an `f64` kernel up by its dispatch name, `None` when the
/// machine does not support it (or the name is unknown).
pub fn by_name(name: &str) -> Option<&'static MicroKernel> {
    available().iter().copied().find(|k| k.name == name)
}

/// The kernel the packed `f64` engine uses, chosen once at first call:
/// `TSEIG_SIMD` when set to a supported name, otherwise the best
/// detected ISA. An unsupported or unknown override falls back to auto
/// detection rather than failing — the env knob exists for testing and
/// benchmarking, not as a hard requirement.
pub fn selected() -> &'static MicroKernel {
    static SELECTED: OnceLock<&'static MicroKernel> = OnceLock::new();
    SELECTED.get_or_init(|| select_env(available()))
}

/// Apply the `TSEIG_SIMD` override to an availability table (shared by
/// every element type's `selected()`): a supported name wins, anything
/// else falls back to the best detected kernel.
fn select_env<T: 'static>(avail: &[&'static MicroKernel<T>]) -> &'static MicroKernel<T> {
    if let Ok(want) = std::env::var("TSEIG_SIMD") {
        if let Some(k) = avail.iter().copied().find(|k| k.name == want.trim()) {
            return k;
        }
    }
    avail[0]
}

/// Element types with a runtime-dispatched microkernel table: the
/// per-type face of the one dispatch mechanism (`OnceLock` + feature
/// detection + `TSEIG_SIMD` override) the `f64` path has always used.
/// Implemented for exactly the four engine types.
pub trait SimdScalar: Scalar + 'static {
    /// Every kernel of this element type the machine can execute, best
    /// first; the portable `scalar` kernel is always present and last.
    fn available() -> &'static [&'static MicroKernel<Self>];

    /// The kernel the packed engine uses for this element type, chosen
    /// once at first call (see [`selected`] for the override rules).
    fn selected() -> &'static MicroKernel<Self>;

    /// Look a kernel of this element type up by dispatch name.
    fn by_name(name: &str) -> Option<&'static MicroKernel<Self>> {
        Self::available().iter().copied().find(|k| k.name == name)
    }
}

impl SimdScalar for f64 {
    #[inline]
    fn available() -> &'static [&'static MicroKernel<f64>] {
        available()
    }
    #[inline]
    fn selected() -> &'static MicroKernel<f64> {
        selected()
    }
}

/// Per-type dispatch table + selection cache. A macro because statics
/// cannot be generic: each element type owns its `OnceLock` pair.
macro_rules! simd_dispatch {
    ($t:ty, $scalar:ident, $avx2:ident, $avx512:ident) => {
        impl SimdScalar for $t {
            fn available() -> &'static [&'static MicroKernel<$t>] {
                static AVAIL: OnceLock<Vec<&'static MicroKernel<$t>>> = OnceLock::new();
                AVAIL.get_or_init(|| {
                    #[allow(unused_mut)]
                    let mut v: Vec<&'static MicroKernel<$t>> = Vec::new();
                    #[cfg(target_arch = "x86_64")]
                    {
                        if is_x86_feature_detected!("avx512f") {
                            v.push(&$avx512);
                        }
                        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                            v.push(&$avx2);
                        }
                    }
                    v.push(&$scalar);
                    v
                })
            }

            fn selected() -> &'static MicroKernel<$t> {
                static SEL: OnceLock<&'static MicroKernel<$t>> = OnceLock::new();
                SEL.get_or_init(|| select_env(<$t as SimdScalar>::available()))
            }
        }
    };
}

simd_dispatch!(f32, SCALAR_F32, AVX2_F32, AVX512_F32);
simd_dispatch!(C64, SCALAR_C64, AVX2_C64, AVX512_C64);
simd_dispatch!(C32, SCALAR_C32, AVX2_C32, AVX512_C32);

// ---------------------------------------------------------------------------
// f64 kernels
// ---------------------------------------------------------------------------

/// Scalar 16x4 tile: plain `mul_add` chains the compiler may
/// autovectorize; semantics identical to the SIMD tiles by construction.
fn mk_scalar(
    kc: usize,
    alpha: f64,
    ap: &[f64],
    bp: &[f64],
    c: &mut [f64],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    const MR: usize = 16;
    const NR: usize = 4;
    let mut acc = [[0.0f64; MR]; NR];
    let (achunks, _) = ap.as_chunks::<MR>();
    let (bchunks, _) = bp.as_chunks::<NR>();
    for p in 0..kc {
        let av: &[f64; MR] = &achunks[p];
        let bv: &[f64; NR] = &bchunks[p];
        for jj in 0..NR {
            let bvj = bv[jj];
            for ii in 0..MR {
                acc[jj][ii] = av[ii].mul_add(bvj, acc[jj][ii]);
            }
        }
    }
    if mr_eff == MR && nr_eff == NR {
        for jj in 0..NR {
            let ccol = &mut c[jj * ldc..jj * ldc + MR];
            for ii in 0..MR {
                ccol[ii] += alpha * acc[jj][ii];
            }
        }
    } else {
        for jj in 0..nr_eff {
            let ccol = &mut c[jj * ldc..][..mr_eff];
            for ii in 0..mr_eff {
                ccol[ii] += alpha * acc[jj][ii];
            }
        }
    }
}

/// Safe entry for the AVX-512 tile: checks every slice bound the
/// intrinsics body relies on, then calls into the `target_feature` fn.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn mk_avx512_entry(
    kc: usize,
    alpha: f64,
    ap: &[f64],
    bp: &[f64],
    c: &mut [f64],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    assert!(
        ap.len() >= 24 * kc && bp.len() >= 8 * kc,
        "packed strip too short"
    );
    assert!(
        c.len() >= (nr_eff.max(1) - 1) * ldc + mr_eff,
        "C tile out of bounds"
    );
    if mr_eff == 24 && nr_eff == 8 {
        assert!(c.len() >= 7 * ldc + 24, "full C tile out of bounds");
    }
    // SAFETY: this entry is only reachable through the AVX512 kernel
    // descriptor, which `available()` registers iff
    // `is_x86_feature_detected!("avx512f")`; the slice bounds the body
    // dereferences are asserted just above.
    unsafe { mk_avx512_24x8(kc, alpha, ap, bp, c, ldc, mr_eff, nr_eff) }
}

/// 24x8 AVX-512F tile: 24 zmm accumulators (three per column), one
/// column broadcast per FMA.
///
/// # Safety
///
/// Caller must guarantee the `avx512f` target feature is available and
/// that `ap.len() >= 24*kc`, `bp.len() >= 8*kc`, and `c` covers the
/// `mr_eff x nr_eff` output tile at leading dimension `ldc` (the full
/// `24 x 8` tile when `mr_eff == 24 && nr_eff == 8`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn mk_avx512_24x8(
    kc: usize,
    alpha: f64,
    ap: &[f64],
    bp: &[f64],
    c: &mut [f64],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    use std::arch::x86_64::*;
    const MR: usize = 24;
    const NR: usize = 8;
    // SAFETY: all pointer arithmetic below stays inside the bounds the
    // safe entry asserted: `ap` is read at `p*24 + 0..24` for p < kc,
    // `bp` at `p*8 + 0..8`, and `c` only on the full-tile path that
    // asserted `7*ldc + 24` coverage.
    unsafe {
        let mut acc = [[_mm512_setzero_pd(); 3]; NR];
        let mut aptr = ap.as_ptr();
        let mut bptr = bp.as_ptr();
        for _ in 0..kc {
            let a0 = _mm512_loadu_pd(aptr);
            let a1 = _mm512_loadu_pd(aptr.add(8));
            let a2 = _mm512_loadu_pd(aptr.add(16));
            for (jj, accj) in acc.iter_mut().enumerate() {
                let bv = _mm512_set1_pd(*bptr.add(jj));
                accj[0] = _mm512_fmadd_pd(a0, bv, accj[0]);
                accj[1] = _mm512_fmadd_pd(a1, bv, accj[1]);
                accj[2] = _mm512_fmadd_pd(a2, bv, accj[2]);
            }
            aptr = aptr.add(MR);
            bptr = bptr.add(NR);
        }
        if mr_eff == MR && nr_eff == NR {
            // Writeback is mul-then-add (not FMA) so every kernel's
            // rounding matches the scalar tile bitwise.
            let va = _mm512_set1_pd(alpha);
            for (jj, accj) in acc.iter().enumerate() {
                let cp = c.as_mut_ptr().add(jj * ldc);
                for (q, &av) in accj.iter().enumerate() {
                    let cv = _mm512_loadu_pd(cp.add(8 * q));
                    _mm512_storeu_pd(cp.add(8 * q), _mm512_add_pd(cv, _mm512_mul_pd(av, va)));
                }
            }
        } else {
            let mut buf = [0.0f64; MR * NR];
            for (jj, accj) in acc.iter().enumerate() {
                for (q, &av) in accj.iter().enumerate() {
                    _mm512_storeu_pd(buf.as_mut_ptr().add(jj * MR + 8 * q), av);
                }
            }
            for jj in 0..nr_eff {
                for ii in 0..mr_eff {
                    c[ii + jj * ldc] += alpha * buf[jj * MR + ii];
                }
            }
        }
    }
}

/// Safe entry for the AVX2 tile; same bounds discipline as the AVX-512
/// entry.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn mk_avx2_entry(
    kc: usize,
    alpha: f64,
    ap: &[f64],
    bp: &[f64],
    c: &mut [f64],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    assert!(
        ap.len() >= 4 * kc && bp.len() >= 12 * kc,
        "packed strip too short"
    );
    assert!(
        c.len() >= (nr_eff.max(1) - 1) * ldc + mr_eff,
        "C tile out of bounds"
    );
    if mr_eff == 4 && nr_eff == 12 {
        assert!(c.len() >= 11 * ldc + 4, "full C tile out of bounds");
    }
    // SAFETY: only reachable through the AVX2 kernel descriptor, which
    // `available()` registers iff `avx2` and `fma` are detected; slice
    // bounds asserted above.
    unsafe { mk_avx2_4x12(kc, alpha, ap, bp, c, ldc, mr_eff, nr_eff) }
}

/// 4x12 AVX2+FMA tile: 12 ymm accumulators, one `A` load and one
/// broadcast per FMA pair.
///
/// # Safety
///
/// Caller must guarantee the `avx2` and `fma` target features are
/// available and that `ap.len() >= 4*kc`, `bp.len() >= 12*kc`, and `c`
/// covers the `mr_eff x nr_eff` output tile at leading dimension `ldc`
/// (the full `4 x 12` tile when `mr_eff == 4 && nr_eff == 12`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn mk_avx2_4x12(
    kc: usize,
    alpha: f64,
    ap: &[f64],
    bp: &[f64],
    c: &mut [f64],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    use std::arch::x86_64::*;
    const MR: usize = 4;
    const NR: usize = 12;
    // SAFETY: pointer arithmetic stays inside the bounds the safe entry
    // asserted (`ap` at `p*4 + 0..4`, `bp` at `p*12 + 0..12`, `c` only
    // on the asserted full-tile path).
    unsafe {
        let mut acc = [_mm256_setzero_pd(); NR];
        let mut aptr = ap.as_ptr();
        let mut bptr = bp.as_ptr();
        for _ in 0..kc {
            let av = _mm256_loadu_pd(aptr);
            for (jj, a) in acc.iter_mut().enumerate() {
                let bv = _mm256_broadcast_sd(&*bptr.add(jj));
                *a = _mm256_fmadd_pd(av, bv, *a);
            }
            aptr = aptr.add(MR);
            bptr = bptr.add(NR);
        }
        if mr_eff == MR && nr_eff == NR {
            let va = _mm256_set1_pd(alpha);
            for (jj, a) in acc.iter().enumerate() {
                let cp = c.as_mut_ptr().add(jj * ldc);
                let cv = _mm256_loadu_pd(cp);
                _mm256_storeu_pd(cp, _mm256_add_pd(cv, _mm256_mul_pd(*a, va)));
            }
        } else {
            let mut buf = [0.0f64; MR * NR];
            for (jj, a) in acc.iter().enumerate() {
                _mm256_storeu_pd(buf.as_mut_ptr().add(jj * MR), *a);
            }
            for jj in 0..nr_eff {
                for ii in 0..mr_eff {
                    c[ii + jj * ldc] += alpha * buf[jj * MR + ii];
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// f32 kernels
// ---------------------------------------------------------------------------

/// Scalar 16x4 `f32` tile: the `f64` scalar tile verbatim at `f32`.
fn mk_scalar_f32(
    kc: usize,
    alpha: f32,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    const MR: usize = 16;
    const NR: usize = 4;
    let mut acc = [[0.0f32; MR]; NR];
    let (achunks, _) = ap.as_chunks::<MR>();
    let (bchunks, _) = bp.as_chunks::<NR>();
    for p in 0..kc {
        let av: &[f32; MR] = &achunks[p];
        let bv: &[f32; NR] = &bchunks[p];
        for jj in 0..NR {
            let bvj = bv[jj];
            for ii in 0..MR {
                acc[jj][ii] = av[ii].mul_add(bvj, acc[jj][ii]);
            }
        }
    }
    for jj in 0..nr_eff {
        let ccol = &mut c[jj * ldc..][..mr_eff];
        for ii in 0..mr_eff {
            ccol[ii] += alpha * acc[jj][ii];
        }
    }
}

/// Safe entry for the `f32` AVX-512 tile; same bounds discipline as the
/// `f64` entries.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn mk_avx512_f32_entry(
    kc: usize,
    alpha: f32,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    assert!(
        ap.len() >= 48 * kc && bp.len() >= 8 * kc,
        "packed strip too short"
    );
    assert!(
        c.len() >= (nr_eff.max(1) - 1) * ldc + mr_eff,
        "C tile out of bounds"
    );
    if mr_eff == 48 && nr_eff == 8 {
        assert!(c.len() >= 7 * ldc + 48, "full C tile out of bounds");
    }
    // SAFETY: only reachable through the AVX512_F32 kernel descriptor,
    // registered iff `is_x86_feature_detected!("avx512f")`; slice
    // bounds asserted above.
    unsafe { mk_avx512_f32_48x8(kc, alpha, ap, bp, c, ldc, mr_eff, nr_eff) }
}

/// 48x8 AVX-512F `f32` tile: the 24x8 `f64` tile at 16 lanes per zmm
/// (24 accumulators, three per column, one broadcast per FMA).
///
/// # Safety
///
/// Caller must guarantee the `avx512f` target feature is available and
/// that `ap.len() >= 48*kc`, `bp.len() >= 8*kc`, and `c` covers the
/// `mr_eff x nr_eff` output tile at leading dimension `ldc` (the full
/// `48 x 8` tile when `mr_eff == 48 && nr_eff == 8`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn mk_avx512_f32_48x8(
    kc: usize,
    alpha: f32,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    use std::arch::x86_64::*;
    const MR: usize = 48;
    const NR: usize = 8;
    // SAFETY: pointer arithmetic stays inside the bounds the safe entry
    // asserted (`ap` at `p*48 + 0..48`, `bp` at `p*8 + 0..8`, `c` only
    // on the asserted full-tile path).
    unsafe {
        let mut acc = [[_mm512_setzero_ps(); 3]; NR];
        let mut aptr = ap.as_ptr();
        let mut bptr = bp.as_ptr();
        for _ in 0..kc {
            let a0 = _mm512_loadu_ps(aptr);
            let a1 = _mm512_loadu_ps(aptr.add(16));
            let a2 = _mm512_loadu_ps(aptr.add(32));
            for (jj, accj) in acc.iter_mut().enumerate() {
                let bv = _mm512_set1_ps(*bptr.add(jj));
                accj[0] = _mm512_fmadd_ps(a0, bv, accj[0]);
                accj[1] = _mm512_fmadd_ps(a1, bv, accj[1]);
                accj[2] = _mm512_fmadd_ps(a2, bv, accj[2]);
            }
            aptr = aptr.add(MR);
            bptr = bptr.add(NR);
        }
        if mr_eff == MR && nr_eff == NR {
            let va = _mm512_set1_ps(alpha);
            for (jj, accj) in acc.iter().enumerate() {
                let cp = c.as_mut_ptr().add(jj * ldc);
                for (q, &av) in accj.iter().enumerate() {
                    let cv = _mm512_loadu_ps(cp.add(16 * q));
                    _mm512_storeu_ps(cp.add(16 * q), _mm512_add_ps(cv, _mm512_mul_ps(av, va)));
                }
            }
        } else {
            let mut buf = [0.0f32; MR * NR];
            for (jj, accj) in acc.iter().enumerate() {
                for (q, &av) in accj.iter().enumerate() {
                    _mm512_storeu_ps(buf.as_mut_ptr().add(jj * MR + 16 * q), av);
                }
            }
            for jj in 0..nr_eff {
                for ii in 0..mr_eff {
                    c[ii + jj * ldc] += alpha * buf[jj * MR + ii];
                }
            }
        }
    }
}

/// Safe entry for the `f32` AVX2 tile.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn mk_avx2_f32_entry(
    kc: usize,
    alpha: f32,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    assert!(
        ap.len() >= 8 * kc && bp.len() >= 12 * kc,
        "packed strip too short"
    );
    assert!(
        c.len() >= (nr_eff.max(1) - 1) * ldc + mr_eff,
        "C tile out of bounds"
    );
    if mr_eff == 8 && nr_eff == 12 {
        assert!(c.len() >= 11 * ldc + 8, "full C tile out of bounds");
    }
    // SAFETY: only reachable through the AVX2_F32 kernel descriptor,
    // registered iff `avx2` and `fma` are detected; slice bounds
    // asserted above.
    unsafe { mk_avx2_f32_8x12(kc, alpha, ap, bp, c, ldc, mr_eff, nr_eff) }
}

/// 8x12 AVX2+FMA `f32` tile: the 4x12 `f64` tile at 8 lanes per ymm.
///
/// # Safety
///
/// Caller must guarantee the `avx2` and `fma` target features are
/// available and that `ap.len() >= 8*kc`, `bp.len() >= 12*kc`, and `c`
/// covers the `mr_eff x nr_eff` output tile at leading dimension `ldc`
/// (the full `8 x 12` tile when `mr_eff == 8 && nr_eff == 12`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn mk_avx2_f32_8x12(
    kc: usize,
    alpha: f32,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    use std::arch::x86_64::*;
    const MR: usize = 8;
    const NR: usize = 12;
    // SAFETY: pointer arithmetic stays inside the bounds the safe entry
    // asserted (`ap` at `p*8 + 0..8`, `bp` at `p*12 + 0..12`, `c` only
    // on the asserted full-tile path).
    unsafe {
        let mut acc = [_mm256_setzero_ps(); NR];
        let mut aptr = ap.as_ptr();
        let mut bptr = bp.as_ptr();
        for _ in 0..kc {
            let av = _mm256_loadu_ps(aptr);
            for (jj, a) in acc.iter_mut().enumerate() {
                let bv = _mm256_broadcast_ss(&*bptr.add(jj));
                *a = _mm256_fmadd_ps(av, bv, *a);
            }
            aptr = aptr.add(MR);
            bptr = bptr.add(NR);
        }
        if mr_eff == MR && nr_eff == NR {
            let va = _mm256_set1_ps(alpha);
            for (jj, a) in acc.iter().enumerate() {
                let cp = c.as_mut_ptr().add(jj * ldc);
                let cv = _mm256_loadu_ps(cp);
                _mm256_storeu_ps(cp, _mm256_add_ps(cv, _mm256_mul_ps(*a, va)));
            }
        } else {
            let mut buf = [0.0f32; MR * NR];
            for (jj, a) in acc.iter().enumerate() {
                _mm256_storeu_ps(buf.as_mut_ptr().add(jj * MR), *a);
            }
            for jj in 0..nr_eff {
                for ii in 0..mr_eff {
                    c[ii + jj * ldc] += alpha * buf[jj * MR + ii];
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Complex kernels (dual-accumulator contract)
// ---------------------------------------------------------------------------

/// Generate, per complex type, the shared combine/writeback helper and
/// the portable scalar tile of the dual-accumulator contract (module
/// docs): the two component-FMA chains per `C(i,j)` live in interleaved
/// `(re, im)` stack buffers — the exact memory image of the SIMD
/// kernels' spilled accumulator registers — and the combine
/// `t = (s1.re - s2.re, s1.im + s2.im); c += alpha * t` is one scalar
/// code path every kernel of the type funnels through, which is what
/// makes all dispatch paths bitwise identical.
macro_rules! complex_kernels {
    ($combine:ident, $scalar_fn:ident, $ct:ty, $ft:ty, $mk:path, $mr:expr, $nr:expr) => {
        /// Combine the two spilled accumulator chains and write the
        /// `mr_eff x nr_eff` corner back: shared by the scalar and SIMD
        /// tiles of this complex type (see the module's complex
        /// contract). `s1`/`s2` hold interleaved `(re, im)` pairs,
        /// column `jj` at offset `jj * 2 * mr`.
        #[inline(always)]
        #[allow(clippy::too_many_arguments)]
        fn $combine(
            s1: &[$ft],
            s2: &[$ft],
            mr: usize,
            alpha: $ct,
            c: &mut [$ct],
            ldc: usize,
            mr_eff: usize,
            nr_eff: usize,
        ) {
            for jj in 0..nr_eff {
                for ii in 0..mr_eff {
                    let o = jj * 2 * mr + 2 * ii;
                    let t = $mk(s1[o] - s2[o], s1[o + 1] + s2[o + 1]);
                    c[ii + jj * ldc] += alpha * t;
                }
            }
        }

        /// Portable complex tile: the dual-accumulator chains on scalar
        /// component `mul_add`, also the differential oracle for this
        /// type's SIMD tiles.
        #[allow(clippy::too_many_arguments)]
        fn $scalar_fn(
            kc: usize,
            alpha: $ct,
            ap: &[$ct],
            bp: &[$ct],
            c: &mut [$ct],
            ldc: usize,
            mr_eff: usize,
            nr_eff: usize,
        ) {
            const MR: usize = $mr;
            const NR: usize = $nr;
            let mut s1 = [0.0 as $ft; 2 * MR * NR];
            let mut s2 = [0.0 as $ft; 2 * MR * NR];
            let (achunks, _) = ap.as_chunks::<MR>();
            let (bchunks, _) = bp.as_chunks::<NR>();
            for p in 0..kc {
                let av: &[$ct; MR] = &achunks[p];
                let bv: &[$ct; NR] = &bchunks[p];
                for jj in 0..NR {
                    let b = bv[jj];
                    for ii in 0..MR {
                        let a = av[ii];
                        let o = jj * 2 * MR + 2 * ii;
                        s1[o] = a.re.mul_add(b.re, s1[o]);
                        s1[o + 1] = a.im.mul_add(b.re, s1[o + 1]);
                        s2[o] = a.im.mul_add(b.im, s2[o]);
                        s2[o + 1] = a.re.mul_add(b.im, s2[o + 1]);
                    }
                }
            }
            $combine(&s1, &s2, MR, alpha, c, ldc, mr_eff, nr_eff);
        }
    };
}

complex_kernels!(combine_c64, mk_scalar_c64, C64, f64, c64, 8, 4);
complex_kernels!(combine_c32, mk_scalar_c32, C32, f32, c32, 8, 4);

/// Safe entry for the `C64` AVX-512 tile.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn mk_avx512_c64_entry(
    kc: usize,
    alpha: C64,
    ap: &[C64],
    bp: &[C64],
    c: &mut [C64],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    assert!(
        ap.len() >= 8 * kc && bp.len() >= 4 * kc,
        "packed strip too short"
    );
    assert!(
        c.len() >= (nr_eff.max(1) - 1) * ldc + mr_eff,
        "C tile out of bounds"
    );
    // SAFETY: only reachable through the AVX512_C64 kernel descriptor,
    // registered iff `is_x86_feature_detected!("avx512f")`; slice
    // bounds asserted above, and the writeback goes through the
    // bounds-checked scalar combine.
    unsafe { mk_avx512_c64_8x4(kc, alpha, ap, bp, c, ldc, mr_eff, nr_eff) }
}

/// 8x4 AVX-512F `C64` tile on the dual-accumulator contract: chain 1 is
/// `fmadd(a, set1(b.re))` on the interleaved vector (2 zmm = 8 complex
/// rows), chain 2 is `fmadd(pair_swap(a), set1(b.im))` where the pair
/// swap is `_mm512_permute_pd::<0x55>`. 16 accumulator zmm + the two
/// `A` vectors, their swaps, and two broadcasts ≈ 22 of 32 registers;
/// 16 FMAs per `k` step against 12 load-port ops, so the loop is
/// FMA-bound. Accumulators are unconditionally spilled to stack buffers
/// and combined in scalar code ([`combine_c64`]) — the cost is ~0.4% of
/// the FMA work at `kc = 256` and it buys bitwise identity with the
/// scalar tile on every path, full tiles included.
///
/// # Safety
///
/// Caller must guarantee the `avx512f` target feature is available and
/// that `ap.len() >= 8*kc` and `bp.len() >= 4*kc` (`C64` is a
/// `#[repr(C)]` `(re, im)` pair, so the strips are read as interleaved
/// `f64` at twice the element count).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn mk_avx512_c64_8x4(
    kc: usize,
    alpha: C64,
    ap: &[C64],
    bp: &[C64],
    c: &mut [C64],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    use std::arch::x86_64::*;
    const MR: usize = 8;
    const NR: usize = 4;
    // SAFETY: `C64` is `#[repr(C)] { re: f64, im: f64 }`, so `ap`/`bp`
    // reinterpret as `2 * len` interleaved f64; reads stay at
    // `p*16 + 0..16` (`ap`) and `p*8 + 0..8` (`bp`) for p < kc, inside
    // the bounds the safe entry asserted. `c` is only written through
    // the bounds-checked scalar combine.
    unsafe {
        let apf = ap.as_ptr() as *const f64;
        let bpf = bp.as_ptr() as *const f64;
        let mut acc1 = [[_mm512_setzero_pd(); 2]; NR];
        let mut acc2 = [[_mm512_setzero_pd(); 2]; NR];
        for p in 0..kc {
            let a0 = _mm512_loadu_pd(apf.add(2 * MR * p));
            let a1 = _mm512_loadu_pd(apf.add(2 * MR * p + 8));
            let a0s = _mm512_permute_pd::<0x55>(a0);
            let a1s = _mm512_permute_pd::<0x55>(a1);
            let bb = bpf.add(2 * NR * p);
            for jj in 0..NR {
                let br = _mm512_set1_pd(*bb.add(2 * jj));
                let bi = _mm512_set1_pd(*bb.add(2 * jj + 1));
                acc1[jj][0] = _mm512_fmadd_pd(a0, br, acc1[jj][0]);
                acc1[jj][1] = _mm512_fmadd_pd(a1, br, acc1[jj][1]);
                acc2[jj][0] = _mm512_fmadd_pd(a0s, bi, acc2[jj][0]);
                acc2[jj][1] = _mm512_fmadd_pd(a1s, bi, acc2[jj][1]);
            }
        }
        let mut s1 = [0.0f64; 2 * MR * NR];
        let mut s2 = [0.0f64; 2 * MR * NR];
        for jj in 0..NR {
            for q in 0..2 {
                _mm512_storeu_pd(s1.as_mut_ptr().add(jj * 2 * MR + 8 * q), acc1[jj][q]);
                _mm512_storeu_pd(s2.as_mut_ptr().add(jj * 2 * MR + 8 * q), acc2[jj][q]);
            }
        }
        combine_c64(&s1, &s2, MR, alpha, c, ldc, mr_eff, nr_eff);
    }
}

/// Safe entry for the `C64` AVX2 tile.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn mk_avx2_c64_entry(
    kc: usize,
    alpha: C64,
    ap: &[C64],
    bp: &[C64],
    c: &mut [C64],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    assert!(
        ap.len() >= 2 * kc && bp.len() >= 6 * kc,
        "packed strip too short"
    );
    assert!(
        c.len() >= (nr_eff.max(1) - 1) * ldc + mr_eff,
        "C tile out of bounds"
    );
    // SAFETY: only reachable through the AVX2_C64 kernel descriptor,
    // registered iff `avx2` and `fma` are detected; slice bounds
    // asserted above, writeback through the bounds-checked scalar
    // combine.
    unsafe { mk_avx2_c64_2x6(kc, alpha, ap, bp, c, ldc, mr_eff, nr_eff) }
}

/// 2x6 AVX2+FMA `C64` tile on the dual-accumulator contract (pair swap
/// via `_mm256_permute_pd::<0x5>`): 12 accumulator ymm + the `A`
/// vector, its swap, and two broadcasts fill the 16-register file.
///
/// # Safety
///
/// Caller must guarantee the `avx2` and `fma` target features are
/// available and that `ap.len() >= 2*kc` and `bp.len() >= 6*kc`
/// (strips read as interleaved `f64`, see [`mk_avx512_c64_8x4`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn mk_avx2_c64_2x6(
    kc: usize,
    alpha: C64,
    ap: &[C64],
    bp: &[C64],
    c: &mut [C64],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    use std::arch::x86_64::*;
    const MR: usize = 2;
    const NR: usize = 6;
    // SAFETY: strips reinterpret as interleaved f64 (`C64` is
    // `#[repr(C)]`); reads stay at `p*4 + 0..4` (`ap`) and
    // `p*12 + 0..12` (`bp`) for p < kc, inside the asserted bounds.
    unsafe {
        let apf = ap.as_ptr() as *const f64;
        let bpf = bp.as_ptr() as *const f64;
        let mut acc1 = [_mm256_setzero_pd(); NR];
        let mut acc2 = [_mm256_setzero_pd(); NR];
        for p in 0..kc {
            let a = _mm256_loadu_pd(apf.add(2 * MR * p));
            let asw = _mm256_permute_pd::<0x5>(a);
            let bb = bpf.add(2 * NR * p);
            for jj in 0..NR {
                let br = _mm256_broadcast_sd(&*bb.add(2 * jj));
                let bi = _mm256_broadcast_sd(&*bb.add(2 * jj + 1));
                acc1[jj] = _mm256_fmadd_pd(a, br, acc1[jj]);
                acc2[jj] = _mm256_fmadd_pd(asw, bi, acc2[jj]);
            }
        }
        let mut s1 = [0.0f64; 2 * MR * NR];
        let mut s2 = [0.0f64; 2 * MR * NR];
        for jj in 0..NR {
            _mm256_storeu_pd(s1.as_mut_ptr().add(jj * 2 * MR), acc1[jj]);
            _mm256_storeu_pd(s2.as_mut_ptr().add(jj * 2 * MR), acc2[jj]);
        }
        combine_c64(&s1, &s2, MR, alpha, c, ldc, mr_eff, nr_eff);
    }
}

/// Safe entry for the `C32` AVX-512 tile.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn mk_avx512_c32_entry(
    kc: usize,
    alpha: C32,
    ap: &[C32],
    bp: &[C32],
    c: &mut [C32],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    assert!(
        ap.len() >= 16 * kc && bp.len() >= 4 * kc,
        "packed strip too short"
    );
    assert!(
        c.len() >= (nr_eff.max(1) - 1) * ldc + mr_eff,
        "C tile out of bounds"
    );
    // SAFETY: only reachable through the AVX512_C32 kernel descriptor,
    // registered iff `is_x86_feature_detected!("avx512f")`; slice
    // bounds asserted above, writeback through the bounds-checked
    // scalar combine.
    unsafe { mk_avx512_c32_16x4(kc, alpha, ap, bp, c, ldc, mr_eff, nr_eff) }
}

/// 16x4 AVX-512F `C32` tile: the `C64` 8x4 dual-accumulator shape at 16
/// `f32` lanes per zmm (pair swap via `_mm512_permute_ps::<0xB1>`).
///
/// # Safety
///
/// Caller must guarantee the `avx512f` target feature is available and
/// that `ap.len() >= 16*kc` and `bp.len() >= 4*kc` (`C32` is a
/// `#[repr(C)]` `(re, im)` pair, so strips are read as interleaved
/// `f32` at twice the element count).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn mk_avx512_c32_16x4(
    kc: usize,
    alpha: C32,
    ap: &[C32],
    bp: &[C32],
    c: &mut [C32],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    use std::arch::x86_64::*;
    const MR: usize = 16;
    const NR: usize = 4;
    // SAFETY: strips reinterpret as interleaved f32 (`C32` is
    // `#[repr(C)]`); reads stay at `p*32 + 0..32` (`ap`) and
    // `p*8 + 0..8` (`bp`) for p < kc, inside the asserted bounds.
    unsafe {
        let apf = ap.as_ptr() as *const f32;
        let bpf = bp.as_ptr() as *const f32;
        let mut acc1 = [[_mm512_setzero_ps(); 2]; NR];
        let mut acc2 = [[_mm512_setzero_ps(); 2]; NR];
        for p in 0..kc {
            let a0 = _mm512_loadu_ps(apf.add(2 * MR * p));
            let a1 = _mm512_loadu_ps(apf.add(2 * MR * p + 16));
            let a0s = _mm512_permute_ps::<0xB1>(a0);
            let a1s = _mm512_permute_ps::<0xB1>(a1);
            let bb = bpf.add(2 * NR * p);
            for jj in 0..NR {
                let br = _mm512_set1_ps(*bb.add(2 * jj));
                let bi = _mm512_set1_ps(*bb.add(2 * jj + 1));
                acc1[jj][0] = _mm512_fmadd_ps(a0, br, acc1[jj][0]);
                acc1[jj][1] = _mm512_fmadd_ps(a1, br, acc1[jj][1]);
                acc2[jj][0] = _mm512_fmadd_ps(a0s, bi, acc2[jj][0]);
                acc2[jj][1] = _mm512_fmadd_ps(a1s, bi, acc2[jj][1]);
            }
        }
        let mut s1 = [0.0f32; 2 * MR * NR];
        let mut s2 = [0.0f32; 2 * MR * NR];
        for jj in 0..NR {
            for q in 0..2 {
                _mm512_storeu_ps(s1.as_mut_ptr().add(jj * 2 * MR + 16 * q), acc1[jj][q]);
                _mm512_storeu_ps(s2.as_mut_ptr().add(jj * 2 * MR + 16 * q), acc2[jj][q]);
            }
        }
        combine_c32(&s1, &s2, MR, alpha, c, ldc, mr_eff, nr_eff);
    }
}

/// Safe entry for the `C32` AVX2 tile.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn mk_avx2_c32_entry(
    kc: usize,
    alpha: C32,
    ap: &[C32],
    bp: &[C32],
    c: &mut [C32],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    assert!(
        ap.len() >= 4 * kc && bp.len() >= 6 * kc,
        "packed strip too short"
    );
    assert!(
        c.len() >= (nr_eff.max(1) - 1) * ldc + mr_eff,
        "C tile out of bounds"
    );
    // SAFETY: only reachable through the AVX2_C32 kernel descriptor,
    // registered iff `avx2` and `fma` are detected; slice bounds
    // asserted above, writeback through the bounds-checked scalar
    // combine.
    unsafe { mk_avx2_c32_4x6(kc, alpha, ap, bp, c, ldc, mr_eff, nr_eff) }
}

/// 4x6 AVX2+FMA `C32` tile: the `C64` 2x6 dual-accumulator shape at 8
/// `f32` lanes per ymm (pair swap via `_mm256_permute_ps::<0xB1>`).
///
/// # Safety
///
/// Caller must guarantee the `avx2` and `fma` target features are
/// available and that `ap.len() >= 4*kc` and `bp.len() >= 6*kc`
/// (strips read as interleaved `f32`, see [`mk_avx512_c32_16x4`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn mk_avx2_c32_4x6(
    kc: usize,
    alpha: C32,
    ap: &[C32],
    bp: &[C32],
    c: &mut [C32],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    use std::arch::x86_64::*;
    const MR: usize = 4;
    const NR: usize = 6;
    // SAFETY: strips reinterpret as interleaved f32 (`C32` is
    // `#[repr(C)]`); reads stay at `p*8 + 0..8` (`ap`) and
    // `p*12 + 0..12` (`bp`) for p < kc, inside the asserted bounds.
    unsafe {
        let apf = ap.as_ptr() as *const f32;
        let bpf = bp.as_ptr() as *const f32;
        let mut acc1 = [_mm256_setzero_ps(); NR];
        let mut acc2 = [_mm256_setzero_ps(); NR];
        for p in 0..kc {
            let a = _mm256_loadu_ps(apf.add(2 * MR * p));
            let asw = _mm256_permute_ps::<0xB1>(a);
            let bb = bpf.add(2 * NR * p);
            for jj in 0..NR {
                let br = _mm256_broadcast_ss(&*bb.add(2 * jj));
                let bi = _mm256_broadcast_ss(&*bb.add(2 * jj + 1));
                acc1[jj] = _mm256_fmadd_ps(a, br, acc1[jj]);
                acc2[jj] = _mm256_fmadd_ps(asw, bi, acc2[jj]);
            }
        }
        let mut s1 = [0.0f32; 2 * MR * NR];
        let mut s2 = [0.0f32; 2 * MR * NR];
        for jj in 0..NR {
            _mm256_storeu_ps(s1.as_mut_ptr().add(jj * 2 * MR), acc1[jj]);
            _mm256_storeu_ps(s2.as_mut_ptr().add(jj * 2 * MR), acc2[jj]);
        }
        combine_c32(&s1, &s2, MR, alpha, c, ldc, mr_eff, nr_eff);
    }
}

// ---------------------------------------------------------------------------
// FMA peak probe
// ---------------------------------------------------------------------------

/// Measured register-resident FMA throughput (flop/s) of the *selected*
/// dispatch path — the "machine peak" denominator for fraction-of-peak
/// reporting. The probe runs eight independent vector accumulator
/// chains with no memory traffic in the timed loop, enough parallelism
/// to cover the FMA latency on both issue ports, using the same vector
/// width the selected microkernel issues (an explicit-zmm kernel must be
/// judged against a zmm ceiling; the compiler's autovectorized loops
/// often stop at ymm). The estimate is a floor of true peak — loop
/// overhead only ever flatters the kernel being judged, never the
/// machine.
pub fn fma_peak() -> f64 {
    let iters: u64 = 5_000_000;
    let mut best = 0.0f64;
    for _ in 0..3 {
        let rate = match selected().name {
            #[cfg(target_arch = "x86_64")]
            "avx512" if is_x86_feature_detected!("avx512f") => {
                // SAFETY: avx512f presence re-checked by the guard above.
                unsafe { peak_probe_avx512(iters) }
            }
            #[cfg(target_arch = "x86_64")]
            "avx2" if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") => {
                // SAFETY: avx2+fma presence re-checked by the guard above.
                unsafe { peak_probe_avx2(iters) }
            }
            _ => peak_probe_portable(iters),
        };
        best = best.max(rate);
    }
    best
}

/// [`fma_peak`] per element type: the same measured `f64` FMA ceiling,
/// rescaled by lane count. Single-precision lanes are twice as many per
/// vector, so the `f32`/`C32` ceiling is `2x` the measured double
/// ceiling; complex flops are *component* flops in all our accounting
/// (a complex mul-add is `MULADD_FLOPS` real flops), so complex types
/// share their component precision's ceiling rather than getting one of
/// their own.
pub fn fma_peak_for(bytes_per_component: usize) -> f64 {
    match bytes_per_component {
        4 => 2.0 * fma_peak(),
        _ => fma_peak(),
    }
}

/// Portable probe: eight independent eight-lane `mul_add` chains the
/// compiler autovectorizes at whatever width it prefers. Returns flop/s.
fn peak_probe_portable(iters: u64) -> f64 {
    const LANES: usize = 8;
    const CHAINS: usize = 8;
    let x = std::hint::black_box([1.000_000_01f64; LANES]);
    let y = std::hint::black_box([0.999_999_99f64; LANES]);
    let mut acc = [[0.0f64; LANES]; CHAINS];
    let t = std::time::Instant::now();
    for _ in 0..iters {
        for chain in &mut acc {
            for l in 0..LANES {
                chain[l] = x[l].mul_add(y[l], chain[l]);
            }
        }
    }
    let dt = t.elapsed().as_secs_f64();
    std::hint::black_box(&acc);
    (iters * (CHAINS * LANES * 2) as u64) as f64 / dt
}

/// AVX-512 probe: eight independent zmm `vfmadd` chains (latency x
/// throughput needs >= 8 in flight). Returns flop/s.
///
/// # Safety
///
/// The CPU must support AVX-512F; callers check
/// `is_x86_feature_detected!("avx512f")` first.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn peak_probe_avx512(iters: u64) -> f64 {
    use std::arch::x86_64::*;
    let x = _mm512_set1_pd(1.000_000_01);
    let y = _mm512_set1_pd(0.999_999_99);
    let mut a0 = _mm512_setzero_pd();
    let mut a1 = _mm512_setzero_pd();
    let mut a2 = _mm512_setzero_pd();
    let mut a3 = _mm512_setzero_pd();
    let mut a4 = _mm512_setzero_pd();
    let mut a5 = _mm512_setzero_pd();
    let mut a6 = _mm512_setzero_pd();
    let mut a7 = _mm512_setzero_pd();
    let t = std::time::Instant::now();
    for _ in 0..iters {
        a0 = _mm512_fmadd_pd(x, y, a0);
        a1 = _mm512_fmadd_pd(x, y, a1);
        a2 = _mm512_fmadd_pd(x, y, a2);
        a3 = _mm512_fmadd_pd(x, y, a3);
        a4 = _mm512_fmadd_pd(x, y, a4);
        a5 = _mm512_fmadd_pd(x, y, a5);
        a6 = _mm512_fmadd_pd(x, y, a6);
        a7 = _mm512_fmadd_pd(x, y, a7);
    }
    let dt = t.elapsed().as_secs_f64();
    let fold = _mm512_add_pd(
        _mm512_add_pd(_mm512_add_pd(a0, a1), _mm512_add_pd(a2, a3)),
        _mm512_add_pd(_mm512_add_pd(a4, a5), _mm512_add_pd(a6, a7)),
    );
    let mut sink = [0.0f64; 8];
    _mm512_storeu_pd(sink.as_mut_ptr(), fold);
    std::hint::black_box(&sink);
    (iters * (8 * 8 * 2) as u64) as f64 / dt
}

/// AVX2+FMA probe: eight independent ymm `vfmadd` chains. Returns
/// flop/s.
///
/// # Safety
///
/// The CPU must support AVX2 and FMA; callers check
/// `is_x86_feature_detected!` for both first.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn peak_probe_avx2(iters: u64) -> f64 {
    use std::arch::x86_64::*;
    let x = _mm256_set1_pd(1.000_000_01);
    let y = _mm256_set1_pd(0.999_999_99);
    let mut a0 = _mm256_setzero_pd();
    let mut a1 = _mm256_setzero_pd();
    let mut a2 = _mm256_setzero_pd();
    let mut a3 = _mm256_setzero_pd();
    let mut a4 = _mm256_setzero_pd();
    let mut a5 = _mm256_setzero_pd();
    let mut a6 = _mm256_setzero_pd();
    let mut a7 = _mm256_setzero_pd();
    let t = std::time::Instant::now();
    for _ in 0..iters {
        a0 = _mm256_fmadd_pd(x, y, a0);
        a1 = _mm256_fmadd_pd(x, y, a1);
        a2 = _mm256_fmadd_pd(x, y, a2);
        a3 = _mm256_fmadd_pd(x, y, a3);
        a4 = _mm256_fmadd_pd(x, y, a4);
        a5 = _mm256_fmadd_pd(x, y, a5);
        a6 = _mm256_fmadd_pd(x, y, a6);
        a7 = _mm256_fmadd_pd(x, y, a7);
    }
    let dt = t.elapsed().as_secs_f64();
    let fold = _mm256_add_pd(
        _mm256_add_pd(a0, a1),
        _mm256_add_pd(
            _mm256_add_pd(a2, a3),
            _mm256_add_pd(_mm256_add_pd(a4, a5), _mm256_add_pd(a6, a7)),
        ),
    );
    let mut sink = [0.0f64; 4];
    _mm256_storeu_pd(sink.as_mut_ptr(), fold);
    std::hint::black_box(&sink);
    (iters * (8 * 4 * 2) as u64) as f64 / dt
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fma_peak_probe_is_sane() {
        // Cheap sanity only (full-rate runs belong to the bench): the
        // probe must return a positive, finite rate on every path.
        assert!(peak_probe_portable(10_000).is_finite());
        // The full probe at its real iteration count is only quick on
        // optimized builds; debug interpretation of the loop takes
        // tens of seconds.
        #[cfg(not(debug_assertions))]
        {
            let p = fma_peak();
            assert!(p > 0.0 && p.is_finite(), "peak {p:.3e}");
            let p32 = fma_peak_for(4);
            assert!(
                p32 > p,
                "f32 ceiling must exceed f64 ({p32:.3e} vs {p:.3e})"
            );
        }
    }

    #[test]
    fn scalar_always_available_and_last() {
        let av = available();
        assert_eq!(av.last().map(|k| k.name), Some("scalar"));
        assert!(by_name("scalar").is_some());
        assert!(by_name("no-such-isa").is_none());
    }

    #[test]
    fn per_type_tables_are_coherent() {
        fn check<T: SimdScalar>() {
            let av = <T as SimdScalar>::available();
            assert_eq!(av.last().map(|k| k.name), Some("scalar"));
            let sel = <T as SimdScalar>::selected();
            assert!(av.iter().any(|k| k.name == sel.name));
            for k in av {
                assert_eq!(k.mc % k.mr, 0, "{}: mc must be a multiple of mr", k.name);
                assert_eq!(k.nc % k.nr, 0, "{}: nc must be a multiple of nr", k.name);
                assert!(k.mr >= 1 && k.nr >= 1);
                assert!(<T as SimdScalar>::by_name(k.name).is_some());
            }
            // Same ISA menu for every type: a TSEIG_SIMD override that
            // one type honors must be honorable by all.
            let names: Vec<_> = av.iter().map(|k| k.name).collect();
            let f64_names: Vec<_> = available().iter().map(|k| k.name).collect();
            assert_eq!(names, f64_names);
        }
        check::<f64>();
        check::<f32>();
        check::<C64>();
        check::<C32>();
    }

    #[test]
    fn blocking_fits_tiles() {
        for k in available() {
            assert_eq!(k.mc % k.mr, 0, "{}: mc must be a multiple of mr", k.name);
            assert_eq!(k.nc % k.nr, 0, "{}: nc must be a multiple of nr", k.name);
            assert!(k.mr >= 1 && k.nr >= 1);
        }
    }

    #[test]
    fn selected_is_available() {
        let sel = selected();
        assert!(available().iter().any(|k| k.name == sel.name));
    }

    #[test]
    fn tiles_match_scalar_on_one_strip() {
        // One packed strip per kernel shape, ragged edges included.
        for k in available() {
            for kc in [1usize, 3, 7, 32] {
                let ap: Vec<f64> = (0..k.mr * kc).map(|i| (i % 13) as f64 - 6.0).collect();
                let bp: Vec<f64> = (0..k.nr * kc).map(|i| (i % 7) as f64 - 3.0).collect();
                for (mr_eff, nr_eff) in [(k.mr, k.nr), (k.mr - k.mr / 2, k.nr - k.nr / 2)] {
                    let ldc = k.mr + 3;
                    let mut c = vec![0.5f64; ldc * k.nr];
                    let mut want = c.clone();
                    k.run(kc, 1.25, &ap, &bp, &mut c, ldc, mr_eff, nr_eff);
                    // Oracle: direct per-element fma chain.
                    for jj in 0..nr_eff {
                        for ii in 0..mr_eff {
                            let mut acc = 0.0f64;
                            for p in 0..kc {
                                acc = ap[p * k.mr + ii].mul_add(bp[p * k.nr + jj], acc);
                            }
                            want[ii + jj * ldc] += 1.25 * acc;
                        }
                    }
                    for (i, (&got, &w)) in c.iter().zip(&want).enumerate() {
                        assert_eq!(got, w, "{} kc={kc} idx={i}", k.name);
                    }
                }
            }
        }
    }

    #[test]
    fn f32_tiles_match_fma_oracle_on_one_strip() {
        for k in <f32 as SimdScalar>::available() {
            for kc in [1usize, 3, 7, 32] {
                let ap: Vec<f32> = (0..k.mr * kc).map(|i| (i % 13) as f32 - 6.0).collect();
                let bp: Vec<f32> = (0..k.nr * kc).map(|i| (i % 7) as f32 - 3.0).collect();
                for (mr_eff, nr_eff) in [(k.mr, k.nr), (k.mr - k.mr / 2, k.nr - k.nr / 2)] {
                    let ldc = k.mr + 3;
                    let mut c = vec![0.5f32; ldc * k.nr];
                    let mut want = c.clone();
                    k.run(kc, 1.25, &ap, &bp, &mut c, ldc, mr_eff, nr_eff);
                    for jj in 0..nr_eff {
                        for ii in 0..mr_eff {
                            let mut acc = 0.0f32;
                            for p in 0..kc {
                                acc = ap[p * k.mr + ii].mul_add(bp[p * k.nr + jj], acc);
                            }
                            want[ii + jj * ldc] += 1.25 * acc;
                        }
                    }
                    for (i, (&got, &w)) in c.iter().zip(&want).enumerate() {
                        assert_eq!(
                            got.to_bits(),
                            w.to_bits(),
                            "{} kc={kc} idx={i}: {got} vs {w}",
                            k.name
                        );
                    }
                }
            }
        }
    }

    /// Dual-accumulator oracle + bitwise cross-kernel check on one
    /// packed strip, for both complex types.
    macro_rules! complex_strip_check {
        ($name:ident, $t:ty, $ft:ty, $mk:path) => {
            #[test]
            fn $name() {
                let alpha = $mk(1.25 as $ft, -0.5 as $ft);
                for k in <$t as SimdScalar>::available() {
                    for kc in [1usize, 3, 7, 32] {
                        let ap: Vec<$t> = (0..k.mr * kc)
                            .map(|i| {
                                $mk(
                                    (i % 13) as $ft - 6.0 as $ft,
                                    ((i * 7) % 11) as $ft - 5.0 as $ft,
                                )
                            })
                            .collect();
                        let bp: Vec<$t> = (0..k.nr * kc)
                            .map(|i| {
                                $mk(
                                    (i % 7) as $ft - 3.0 as $ft,
                                    ((i * 5) % 9) as $ft - 4.0 as $ft,
                                )
                            })
                            .collect();
                        for (mr_eff, nr_eff) in [(k.mr, k.nr), (k.mr - k.mr / 2, k.nr - k.nr / 2)] {
                            let ldc = k.mr + 3;
                            let mut c = vec![$mk(0.5 as $ft, -0.25 as $ft); ldc * k.nr];
                            let mut want = c.clone();
                            k.run(kc, alpha, &ap, &bp, &mut c, ldc, mr_eff, nr_eff);
                            // Oracle: the dual-accumulator contract, per
                            // element, straight from the module docs.
                            for jj in 0..nr_eff {
                                for ii in 0..mr_eff {
                                    let (mut s1r, mut s1i) = (0.0 as $ft, 0.0 as $ft);
                                    let (mut s2r, mut s2i) = (0.0 as $ft, 0.0 as $ft);
                                    for p in 0..kc {
                                        let a = ap[p * k.mr + ii];
                                        let b = bp[p * k.nr + jj];
                                        s1r = a.re.mul_add(b.re, s1r);
                                        s1i = a.im.mul_add(b.re, s1i);
                                        s2r = a.im.mul_add(b.im, s2r);
                                        s2i = a.re.mul_add(b.im, s2i);
                                    }
                                    let t = $mk(s1r - s2r, s1i + s2i);
                                    let i = ii + jj * ldc;
                                    want[i] += alpha * t;
                                }
                            }
                            for (i, (&got, &w)) in c.iter().zip(&want).enumerate() {
                                assert!(
                                    got.re.to_bits() == w.re.to_bits()
                                        && got.im.to_bits() == w.im.to_bits(),
                                    "{} kc={kc} idx={i}: {got:?} vs {w:?}",
                                    k.name
                                );
                            }
                        }
                    }
                }
            }
        };
    }

    complex_strip_check!(c64_tiles_match_dual_acc_oracle, C64, f64, c64);
    complex_strip_check!(c32_tiles_match_dual_acc_oracle, C32, f32, c32);
}
