//! Explicit-SIMD GEMM microkernels with one-time runtime dispatch.
//!
//! The packed loop nest in [`super`] is ISA-agnostic: it packs `op(A)`
//! into `mr`-row strips and `op(B)` into `nr`-column strips, then calls
//! one [`MicroKernel`] per register tile. This module owns the tile
//! shapes and their implementations:
//!
//! | name     | tile (`mr x nr`) | ISA                 | why this shape |
//! |----------|------------------|---------------------|----------------|
//! | `avx512` | 24 x 8           | AVX-512F `vfmadd`   | 24 zmm accumulators (3 per column x 8) + 3 `A` loads + 1 broadcast = 28 of 32 registers; >= 24 independent FMA chains cover the FMA latency x throughput product |
//! | `avx2`   | 4 x 12           | AVX2 + FMA `vfmadd` | 12 ymm accumulators + 1 `A` load + 1 broadcast = 14 of 16 registers |
//! | `scalar` | 16 x 4           | portable `mul_add`  | autovectorizable fallback; also the differential-testing oracle |
//!
//! **Dispatch** happens once, at the first `gemm`-family call: the
//! `TSEIG_SIMD` environment variable (`avx512` / `avx2` / `scalar`) is
//! honored when the requested ISA is available, otherwise detection
//! order is `avx512` → `avx2` → `scalar` via
//! [`std::arch::is_x86_feature_detected!`]. [`available()`] exposes every
//! kernel the machine supports so tests and benches can run each path
//! explicitly in one process (the env override is a process-wide choice).
//!
//! **Numerical contract:** for a fixed problem every kernel produces
//! *bitwise identical* results. Each `C(i,j)` is a k-ordered chain of
//! fused multiply-adds regardless of the tile shape (packing only
//! regroups rows/columns, never the `k` loop), all kernels share the
//! same `KC` blocking, and the writeback computes `c + alpha * acc`
//! with a separate multiply and add (not an FMA) to match the scalar
//! path rounding-for-rounding. The differential proptests in
//! `tests/simd_dispatch.rs` pin this down.

use std::sync::OnceLock;

/// Signature every microkernel implements: one `mr x nr` tile of
/// `C += alpha * Ap * Bp` from packed strips. `ap` is the `mr * kc`
/// zero-padded A strip, `bp` the `nr * kc` B strip; edge tiles compute
/// on the padding and store only the `mr_eff x nr_eff` valid corner.
/// Generic over the element type so the one packed loop nest in
/// [`super::engine`] serves both `f64` and `C64`; the default keeps
/// every pre-generic `f64` signature reading exactly as before.
pub type MicroFn<T = f64> = fn(
    kc: usize,
    alpha: T,
    ap: &[T],
    bp: &[T],
    c: &mut [T],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
);

/// One dispatchable register-tile kernel plus the cache blocking that
/// fits its shape (`mc` a multiple of `mr`, `nc` a multiple of `nr`;
/// `KC` is shared so every kernel splits the `k` loop identically and
/// stays bitwise-comparable). Generic over the element type; the
/// `f64` default keeps the historical name for the real dispatch table,
/// while the complex engine registers a `MicroKernel<C64>`.
pub struct MicroKernel<T: 'static = f64> {
    /// Dispatch name (`avx512` / `avx2` / `scalar`), matching the
    /// `TSEIG_SIMD` values.
    pub name: &'static str,
    /// Register-tile height.
    pub mr: usize,
    /// Register-tile width.
    pub nr: usize,
    /// Row-block size of the packed `A` panel (about half an L2).
    pub mc: usize,
    /// Column-block size of the packed `B` panel (an L3 slice).
    pub nc: usize,
    func: MicroFn<T>,
}

impl<T: 'static> MicroKernel<T> {
    /// Build a kernel descriptor; used by the engine to register tile
    /// implementations for element types other than `f64` (the `f64`
    /// dispatch table is constructed in this module).
    pub const fn new(
        name: &'static str,
        mr: usize,
        nr: usize,
        mc: usize,
        nc: usize,
        func: MicroFn<T>,
    ) -> Self {
        MicroKernel {
            name,
            mr,
            nr,
            mc,
            nc,
            func,
        }
    }

    /// Run the kernel on one packed tile.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        kc: usize,
        alpha: T,
        ap: &[T],
        bp: &[T],
        c: &mut [T],
        ldc: usize,
        mr_eff: usize,
        nr_eff: usize,
    ) {
        (self.func)(kc, alpha, ap, bp, c, ldc, mr_eff, nr_eff)
    }
}

/// Portable fallback tile, also the oracle the SIMD paths are
/// differential-tested against. Shape matches the pre-SIMD packed
/// engine (two 8-wide FMA rows by four columns).
pub static SCALAR: MicroKernel = MicroKernel {
    name: "scalar",
    mr: 16,
    nr: 4,
    mc: 256,
    nc: 1024,
    func: mk_scalar,
};

/// AVX2+FMA tile.
#[cfg(target_arch = "x86_64")]
pub static AVX2: MicroKernel = MicroKernel {
    name: "avx2",
    mr: 4,
    nr: 12,
    mc: 256,
    nc: 1020,
    func: mk_avx2_entry,
};

/// AVX-512F tile.
#[cfg(target_arch = "x86_64")]
pub static AVX512: MicroKernel = MicroKernel {
    name: "avx512",
    mr: 24,
    nr: 8,
    mc: 240,
    nc: 1024,
    func: mk_avx512_entry,
};

/// Every kernel this machine can execute, best first. Tests and benches
/// iterate this to exercise each dispatch path in-process.
pub fn available() -> &'static [&'static MicroKernel] {
    static AVAIL: OnceLock<Vec<&'static MicroKernel>> = OnceLock::new();
    AVAIL.get_or_init(|| {
        #[allow(unused_mut)]
        let mut v: Vec<&'static MicroKernel> = Vec::new();
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f") {
                v.push(&AVX512);
            }
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                v.push(&AVX2);
            }
        }
        v.push(&SCALAR);
        v
    })
}

/// Look a kernel up by its dispatch name, `None` when the machine does
/// not support it (or the name is unknown).
pub fn by_name(name: &str) -> Option<&'static MicroKernel> {
    available().iter().copied().find(|k| k.name == name)
}

/// The kernel the packed engine uses, chosen once at first call:
/// `TSEIG_SIMD` when set to a supported name, otherwise the best
/// detected ISA. An unsupported or unknown override falls back to auto
/// detection rather than failing — the env knob exists for testing and
/// benchmarking, not as a hard requirement.
pub fn selected() -> &'static MicroKernel {
    static SELECTED: OnceLock<&'static MicroKernel> = OnceLock::new();
    SELECTED.get_or_init(|| {
        if let Ok(want) = std::env::var("TSEIG_SIMD") {
            if let Some(k) = by_name(want.trim()) {
                return k;
            }
        }
        available()[0]
    })
}

/// Scalar 16x4 tile: plain `mul_add` chains the compiler may
/// autovectorize; semantics identical to the SIMD tiles by construction.
fn mk_scalar(
    kc: usize,
    alpha: f64,
    ap: &[f64],
    bp: &[f64],
    c: &mut [f64],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    const MR: usize = 16;
    const NR: usize = 4;
    let mut acc = [[0.0f64; MR]; NR];
    let (achunks, _) = ap.as_chunks::<MR>();
    let (bchunks, _) = bp.as_chunks::<NR>();
    for p in 0..kc {
        let av: &[f64; MR] = &achunks[p];
        let bv: &[f64; NR] = &bchunks[p];
        for jj in 0..NR {
            let bvj = bv[jj];
            for ii in 0..MR {
                acc[jj][ii] = av[ii].mul_add(bvj, acc[jj][ii]);
            }
        }
    }
    if mr_eff == MR && nr_eff == NR {
        for jj in 0..NR {
            let ccol = &mut c[jj * ldc..jj * ldc + MR];
            for ii in 0..MR {
                ccol[ii] += alpha * acc[jj][ii];
            }
        }
    } else {
        for jj in 0..nr_eff {
            let ccol = &mut c[jj * ldc..][..mr_eff];
            for ii in 0..mr_eff {
                ccol[ii] += alpha * acc[jj][ii];
            }
        }
    }
}

/// Safe entry for the AVX-512 tile: checks every slice bound the
/// intrinsics body relies on, then calls into the `target_feature` fn.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn mk_avx512_entry(
    kc: usize,
    alpha: f64,
    ap: &[f64],
    bp: &[f64],
    c: &mut [f64],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    assert!(
        ap.len() >= 24 * kc && bp.len() >= 8 * kc,
        "packed strip too short"
    );
    assert!(
        c.len() >= (nr_eff.max(1) - 1) * ldc + mr_eff,
        "C tile out of bounds"
    );
    if mr_eff == 24 && nr_eff == 8 {
        assert!(c.len() >= 7 * ldc + 24, "full C tile out of bounds");
    }
    // SAFETY: this entry is only reachable through the AVX512 kernel
    // descriptor, which `available()` registers iff
    // `is_x86_feature_detected!("avx512f")`; the slice bounds the body
    // dereferences are asserted just above.
    unsafe { mk_avx512_24x8(kc, alpha, ap, bp, c, ldc, mr_eff, nr_eff) }
}

/// 24x8 AVX-512F tile: 24 zmm accumulators (three per column), one
/// column broadcast per FMA.
///
/// # Safety
///
/// Caller must guarantee the `avx512f` target feature is available and
/// that `ap.len() >= 24*kc`, `bp.len() >= 8*kc`, and `c` covers the
/// `mr_eff x nr_eff` output tile at leading dimension `ldc` (the full
/// `24 x 8` tile when `mr_eff == 24 && nr_eff == 8`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn mk_avx512_24x8(
    kc: usize,
    alpha: f64,
    ap: &[f64],
    bp: &[f64],
    c: &mut [f64],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    use std::arch::x86_64::*;
    const MR: usize = 24;
    const NR: usize = 8;
    // SAFETY: all pointer arithmetic below stays inside the bounds the
    // safe entry asserted: `ap` is read at `p*24 + 0..24` for p < kc,
    // `bp` at `p*8 + 0..8`, and `c` only on the full-tile path that
    // asserted `7*ldc + 24` coverage.
    unsafe {
        let mut acc = [[_mm512_setzero_pd(); 3]; NR];
        let mut aptr = ap.as_ptr();
        let mut bptr = bp.as_ptr();
        for _ in 0..kc {
            let a0 = _mm512_loadu_pd(aptr);
            let a1 = _mm512_loadu_pd(aptr.add(8));
            let a2 = _mm512_loadu_pd(aptr.add(16));
            for (jj, accj) in acc.iter_mut().enumerate() {
                let bv = _mm512_set1_pd(*bptr.add(jj));
                accj[0] = _mm512_fmadd_pd(a0, bv, accj[0]);
                accj[1] = _mm512_fmadd_pd(a1, bv, accj[1]);
                accj[2] = _mm512_fmadd_pd(a2, bv, accj[2]);
            }
            aptr = aptr.add(MR);
            bptr = bptr.add(NR);
        }
        if mr_eff == MR && nr_eff == NR {
            // Writeback is mul-then-add (not FMA) so every kernel's
            // rounding matches the scalar tile bitwise.
            let va = _mm512_set1_pd(alpha);
            for (jj, accj) in acc.iter().enumerate() {
                let cp = c.as_mut_ptr().add(jj * ldc);
                for (q, &av) in accj.iter().enumerate() {
                    let cv = _mm512_loadu_pd(cp.add(8 * q));
                    _mm512_storeu_pd(cp.add(8 * q), _mm512_add_pd(cv, _mm512_mul_pd(av, va)));
                }
            }
        } else {
            let mut buf = [0.0f64; MR * NR];
            for (jj, accj) in acc.iter().enumerate() {
                for (q, &av) in accj.iter().enumerate() {
                    _mm512_storeu_pd(buf.as_mut_ptr().add(jj * MR + 8 * q), av);
                }
            }
            for jj in 0..nr_eff {
                for ii in 0..mr_eff {
                    c[ii + jj * ldc] += alpha * buf[jj * MR + ii];
                }
            }
        }
    }
}

/// Safe entry for the AVX2 tile; same bounds discipline as the AVX-512
/// entry.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn mk_avx2_entry(
    kc: usize,
    alpha: f64,
    ap: &[f64],
    bp: &[f64],
    c: &mut [f64],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    assert!(
        ap.len() >= 4 * kc && bp.len() >= 12 * kc,
        "packed strip too short"
    );
    assert!(
        c.len() >= (nr_eff.max(1) - 1) * ldc + mr_eff,
        "C tile out of bounds"
    );
    if mr_eff == 4 && nr_eff == 12 {
        assert!(c.len() >= 11 * ldc + 4, "full C tile out of bounds");
    }
    // SAFETY: only reachable through the AVX2 kernel descriptor, which
    // `available()` registers iff `avx2` and `fma` are detected; slice
    // bounds asserted above.
    unsafe { mk_avx2_4x12(kc, alpha, ap, bp, c, ldc, mr_eff, nr_eff) }
}

/// 4x12 AVX2+FMA tile: 12 ymm accumulators, one `A` load and one
/// broadcast per FMA pair.
///
/// # Safety
///
/// Caller must guarantee the `avx2` and `fma` target features are
/// available and that `ap.len() >= 4*kc`, `bp.len() >= 12*kc`, and `c`
/// covers the `mr_eff x nr_eff` output tile at leading dimension `ldc`
/// (the full `4 x 12` tile when `mr_eff == 4 && nr_eff == 12`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn mk_avx2_4x12(
    kc: usize,
    alpha: f64,
    ap: &[f64],
    bp: &[f64],
    c: &mut [f64],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    use std::arch::x86_64::*;
    const MR: usize = 4;
    const NR: usize = 12;
    // SAFETY: pointer arithmetic stays inside the bounds the safe entry
    // asserted (`ap` at `p*4 + 0..4`, `bp` at `p*12 + 0..12`, `c` only
    // on the asserted full-tile path).
    unsafe {
        let mut acc = [_mm256_setzero_pd(); NR];
        let mut aptr = ap.as_ptr();
        let mut bptr = bp.as_ptr();
        for _ in 0..kc {
            let av = _mm256_loadu_pd(aptr);
            for (jj, a) in acc.iter_mut().enumerate() {
                let bv = _mm256_broadcast_sd(&*bptr.add(jj));
                *a = _mm256_fmadd_pd(av, bv, *a);
            }
            aptr = aptr.add(MR);
            bptr = bptr.add(NR);
        }
        if mr_eff == MR && nr_eff == NR {
            let va = _mm256_set1_pd(alpha);
            for (jj, a) in acc.iter().enumerate() {
                let cp = c.as_mut_ptr().add(jj * ldc);
                let cv = _mm256_loadu_pd(cp);
                _mm256_storeu_pd(cp, _mm256_add_pd(cv, _mm256_mul_pd(*a, va)));
            }
        } else {
            let mut buf = [0.0f64; MR * NR];
            for (jj, a) in acc.iter().enumerate() {
                _mm256_storeu_pd(buf.as_mut_ptr().add(jj * MR), *a);
            }
            for jj in 0..nr_eff {
                for ii in 0..mr_eff {
                    c[ii + jj * ldc] += alpha * buf[jj * MR + ii];
                }
            }
        }
    }
}

/// Measured register-resident FMA throughput (flop/s) of the *selected*
/// dispatch path — the "machine peak" denominator for fraction-of-peak
/// reporting. The probe runs eight independent vector accumulator
/// chains with no memory traffic in the timed loop, enough parallelism
/// to cover the FMA latency on both issue ports, using the same vector
/// width the selected microkernel issues (an explicit-zmm kernel must be
/// judged against a zmm ceiling; the compiler's autovectorized loops
/// often stop at ymm). The estimate is a floor of true peak — loop
/// overhead only ever flatters the kernel being judged, never the
/// machine.
pub fn fma_peak() -> f64 {
    let iters: u64 = 5_000_000;
    let mut best = 0.0f64;
    for _ in 0..3 {
        let rate = match selected().name {
            #[cfg(target_arch = "x86_64")]
            "avx512" if is_x86_feature_detected!("avx512f") => {
                // SAFETY: avx512f presence re-checked by the guard above.
                unsafe { peak_probe_avx512(iters) }
            }
            #[cfg(target_arch = "x86_64")]
            "avx2" if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") => {
                // SAFETY: avx2+fma presence re-checked by the guard above.
                unsafe { peak_probe_avx2(iters) }
            }
            _ => peak_probe_portable(iters),
        };
        best = best.max(rate);
    }
    best
}

/// Portable probe: eight independent eight-lane `mul_add` chains the
/// compiler autovectorizes at whatever width it prefers. Returns flop/s.
fn peak_probe_portable(iters: u64) -> f64 {
    const LANES: usize = 8;
    const CHAINS: usize = 8;
    let x = std::hint::black_box([1.000_000_01f64; LANES]);
    let y = std::hint::black_box([0.999_999_99f64; LANES]);
    let mut acc = [[0.0f64; LANES]; CHAINS];
    let t = std::time::Instant::now();
    for _ in 0..iters {
        for chain in &mut acc {
            for l in 0..LANES {
                chain[l] = x[l].mul_add(y[l], chain[l]);
            }
        }
    }
    let dt = t.elapsed().as_secs_f64();
    std::hint::black_box(&acc);
    (iters * (CHAINS * LANES * 2) as u64) as f64 / dt
}

/// AVX-512 probe: eight independent zmm `vfmadd` chains (latency x
/// throughput needs >= 8 in flight). Returns flop/s.
///
/// # Safety
///
/// The CPU must support AVX-512F; callers check
/// `is_x86_feature_detected!("avx512f")` first.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn peak_probe_avx512(iters: u64) -> f64 {
    use std::arch::x86_64::*;
    let x = _mm512_set1_pd(1.000_000_01);
    let y = _mm512_set1_pd(0.999_999_99);
    let mut a0 = _mm512_setzero_pd();
    let mut a1 = _mm512_setzero_pd();
    let mut a2 = _mm512_setzero_pd();
    let mut a3 = _mm512_setzero_pd();
    let mut a4 = _mm512_setzero_pd();
    let mut a5 = _mm512_setzero_pd();
    let mut a6 = _mm512_setzero_pd();
    let mut a7 = _mm512_setzero_pd();
    let t = std::time::Instant::now();
    for _ in 0..iters {
        a0 = _mm512_fmadd_pd(x, y, a0);
        a1 = _mm512_fmadd_pd(x, y, a1);
        a2 = _mm512_fmadd_pd(x, y, a2);
        a3 = _mm512_fmadd_pd(x, y, a3);
        a4 = _mm512_fmadd_pd(x, y, a4);
        a5 = _mm512_fmadd_pd(x, y, a5);
        a6 = _mm512_fmadd_pd(x, y, a6);
        a7 = _mm512_fmadd_pd(x, y, a7);
    }
    let dt = t.elapsed().as_secs_f64();
    let fold = _mm512_add_pd(
        _mm512_add_pd(_mm512_add_pd(a0, a1), _mm512_add_pd(a2, a3)),
        _mm512_add_pd(_mm512_add_pd(a4, a5), _mm512_add_pd(a6, a7)),
    );
    let mut sink = [0.0f64; 8];
    _mm512_storeu_pd(sink.as_mut_ptr(), fold);
    std::hint::black_box(&sink);
    (iters * (8 * 8 * 2) as u64) as f64 / dt
}

/// AVX2+FMA probe: eight independent ymm `vfmadd` chains. Returns
/// flop/s.
///
/// # Safety
///
/// The CPU must support AVX2 and FMA; callers check
/// `is_x86_feature_detected!` for both first.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn peak_probe_avx2(iters: u64) -> f64 {
    use std::arch::x86_64::*;
    let x = _mm256_set1_pd(1.000_000_01);
    let y = _mm256_set1_pd(0.999_999_99);
    let mut a0 = _mm256_setzero_pd();
    let mut a1 = _mm256_setzero_pd();
    let mut a2 = _mm256_setzero_pd();
    let mut a3 = _mm256_setzero_pd();
    let mut a4 = _mm256_setzero_pd();
    let mut a5 = _mm256_setzero_pd();
    let mut a6 = _mm256_setzero_pd();
    let mut a7 = _mm256_setzero_pd();
    let t = std::time::Instant::now();
    for _ in 0..iters {
        a0 = _mm256_fmadd_pd(x, y, a0);
        a1 = _mm256_fmadd_pd(x, y, a1);
        a2 = _mm256_fmadd_pd(x, y, a2);
        a3 = _mm256_fmadd_pd(x, y, a3);
        a4 = _mm256_fmadd_pd(x, y, a4);
        a5 = _mm256_fmadd_pd(x, y, a5);
        a6 = _mm256_fmadd_pd(x, y, a6);
        a7 = _mm256_fmadd_pd(x, y, a7);
    }
    let dt = t.elapsed().as_secs_f64();
    let fold = _mm256_add_pd(
        _mm256_add_pd(a0, a1),
        _mm256_add_pd(
            _mm256_add_pd(a2, a3),
            _mm256_add_pd(_mm256_add_pd(a4, a5), _mm256_add_pd(a6, a7)),
        ),
    );
    let mut sink = [0.0f64; 4];
    _mm256_storeu_pd(sink.as_mut_ptr(), fold);
    std::hint::black_box(&sink);
    (iters * (8 * 4 * 2) as u64) as f64 / dt
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fma_peak_probe_is_sane() {
        // Cheap sanity only (full-rate runs belong to the bench): the
        // probe must return a positive, finite rate on every path.
        assert!(peak_probe_portable(10_000).is_finite());
        // The full probe at its real iteration count is only quick on
        // optimized builds; debug interpretation of the loop takes
        // tens of seconds.
        #[cfg(not(debug_assertions))]
        {
            let p = fma_peak();
            assert!(p > 0.0 && p.is_finite(), "peak {p:.3e}");
        }
    }

    #[test]
    fn scalar_always_available_and_last() {
        let av = available();
        assert_eq!(av.last().map(|k| k.name), Some("scalar"));
        assert!(by_name("scalar").is_some());
        assert!(by_name("no-such-isa").is_none());
    }

    #[test]
    fn blocking_fits_tiles() {
        for k in available() {
            assert_eq!(k.mc % k.mr, 0, "{}: mc must be a multiple of mr", k.name);
            assert_eq!(k.nc % k.nr, 0, "{}: nc must be a multiple of nr", k.name);
            assert!(k.mr >= 1 && k.nr >= 1);
        }
    }

    #[test]
    fn selected_is_available() {
        let sel = selected();
        assert!(available().iter().any(|k| k.name == sel.name));
    }

    #[test]
    fn tiles_match_scalar_on_one_strip() {
        // One packed strip per kernel shape, ragged edges included.
        for k in available() {
            for kc in [1usize, 3, 7, 32] {
                let ap: Vec<f64> = (0..k.mr * kc).map(|i| (i % 13) as f64 - 6.0).collect();
                let bp: Vec<f64> = (0..k.nr * kc).map(|i| (i % 7) as f64 - 3.0).collect();
                for (mr_eff, nr_eff) in [(k.mr, k.nr), (k.mr - k.mr / 2, k.nr - k.nr / 2)] {
                    let ldc = k.mr + 3;
                    let mut c = vec![0.5f64; ldc * k.nr];
                    let mut want = c.clone();
                    k.run(kc, 1.25, &ap, &bp, &mut c, ldc, mr_eff, nr_eff);
                    // Oracle: direct per-element fma chain.
                    for jj in 0..nr_eff {
                        for ii in 0..mr_eff {
                            let mut acc = 0.0f64;
                            for p in 0..kc {
                                acc = ap[p * k.mr + ii].mul_add(bp[p * k.nr + jj], acc);
                            }
                            want[ii + jj * ldc] += 1.25 * acc;
                        }
                    }
                    for (i, (&got, &w)) in c.iter().zip(&want).enumerate() {
                        assert_eq!(got, w, "{} kc={kc} idx={i}", k.name);
                    }
                }
            }
        }
    }
}
