//! The element-type-generic packed GEMM engine.
//!
//! This module is the one copy of the BLIS-style packed loop nest the
//! whole project runs on, generic over [`Scalar`]: the `f64` entry
//! points in [`super`] monomorphize it with the dispatched SIMD
//! microkernel (bitwise identical to the pre-generic engine — the
//! differential dispatch suite pins that), the Hermitian pipeline
//! monomorphizes it at [`C64`]/[`C32`], and the single-precision real
//! path at `f32` — each type behind its own runtime-dispatched
//! microkernel table in [`super::simd`].
//!
//! ## Conjugation lives in the pack, not the loop
//!
//! The operand op vocabulary is [`Op`] (`No` / `Trans` / `ConjTrans`).
//! `ConjTrans` is folded into the O(n²) packing gather — the packed
//! strip simply holds conjugated values — so the O(n³) microkernel loop
//! is identical for all nine op combinations, exactly the way the
//! transpose itself has always been absorbed by packing. For `f64`,
//! `Scalar::conj` is the identity and `ConjTrans` degenerates to
//! `Trans`.
//!
//! ## Per-type plumbing: [`GemmScalar`]
//!
//! Two things cannot be written generically: the `thread_local!`
//! grow-only pack buffers (a thread-local cannot be generic) and the
//! default microkernel for the type. [`GemmScalar`] supplies both; it
//! is implemented for exactly the four element types of the project
//! (`f32` / `f64` / `C32` / `C64`). Every impl routes the kernel choice
//! to its type's [`SimdScalar`] dispatch table and owns a per-thread
//! buffer pair, so mixed-type call sequences on one thread never thrash
//! one arena.
//!
//! ## Byte-traffic model
//!
//! [`packed_bytes`] charges the packed-engine model — each operand is
//! packed once per cache block that revisits it (`A` once per `jc`
//! panel, `B` once), `C` is read+written once per rank-`KC` update —
//! weighted by `T::BYTES`. This is the same model the `f64` counters
//! have used since the packed engine landed, now shared by the complex
//! wrappers so arithmetic-intensity reports stay comparable between
//! the real and complex columns.

use super::simd::{MicroKernel, SimdScalar};
use super::{Op, KC};
use crate::contract;
use crate::flops::{add, add_bytes, Level};
use rayon::prelude::*;
use std::cell::RefCell;
use tseig_matrix::{Scalar, C32, C64};

/// Element type the packed engine can drive end to end: a [`Scalar`]
/// plus the two per-type singletons the generic code cannot own — the
/// default register tile and the per-thread pack-buffer pair.
pub trait GemmScalar: SimdScalar {
    /// The microkernel the public entry points dispatch to: the type's
    /// runtime-selected SIMD tile.
    fn kernel() -> &'static MicroKernel<Self>;

    /// Run `f` with this thread's grow-only `(packed A, packed B)`
    /// buffers; reused across the whole `jc`/`pc`/`ic` nest and across
    /// calls, keeping the allocator out of the hot loop.
    fn with_pack_bufs<R>(f: impl FnOnce(&mut Vec<Self>, &mut Vec<Self>) -> R) -> R;
}

thread_local! {
    /// Per-thread `f64` `(packed A, packed B)` buffers. Grow on demand;
    /// a bounded shrink at the top of each nest (see
    /// [`shrink_pack_buf`]) keeps long-lived pool threads from retaining
    /// one historical peak forever.
    static PACK_BUFS_F64: RefCell<(Vec<f64>, Vec<f64>)> = const { RefCell::new((Vec::new(), Vec::new())) };
    /// Per-thread `C64` pack buffers (separate so mixed real/complex
    /// call sequences on one thread never thrash one arena).
    static PACK_BUFS_C64: RefCell<(Vec<C64>, Vec<C64>)> = const { RefCell::new((Vec::new(), Vec::new())) };
    /// Per-thread `f32` pack buffers.
    static PACK_BUFS_F32: RefCell<(Vec<f32>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
    /// Per-thread `C32` pack buffers.
    static PACK_BUFS_C32: RefCell<(Vec<C32>, Vec<C32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Shrink once the retained capacity exceeds this multiple of what the
/// current nest needs. Hysteresis: a steady stream of same-sized GEMMs
/// never triggers it, so the zero-allocation hot path stays warm.
const PACK_SHRINK_FACTOR: usize = 4;

/// Never bother shrinking below this footprint — churn on kilobyte-sized
/// buffers costs more than it frees.
const PACK_SHRINK_MIN_BYTES: usize = 1 << 20;

/// Bounded-retention policy for a per-thread pack buffer: if the buffer
/// holds more than [`PACK_SHRINK_FACTOR`]x what this whole nest can use
/// and that excess is above [`PACK_SHRINK_MIN_BYTES`], release the
/// excess. Called once per nest with the nest's *maximum* block need, so
/// ragged tail blocks inside a nest can never cause grow/shrink thrash.
fn shrink_pack_buf<T: Scalar>(buf: &mut Vec<T>, need: usize) {
    let bytes = buf.capacity().saturating_mul(std::mem::size_of::<T>());
    if bytes > PACK_SHRINK_MIN_BYTES && buf.capacity() > PACK_SHRINK_FACTOR * need {
        buf.truncate(need);
        buf.shrink_to(need.max(1));
    }
}

/// Bytes of pack-buffer capacity retained by *this thread* for `f64`
/// nests. Footprint introspection for tests and services watching
/// long-lived workers.
pub fn pack_footprint_bytes_f64() -> usize {
    PACK_BUFS_F64.with(|bufs| {
        let (ap, bp) = &*bufs.borrow();
        (ap.capacity() + bp.capacity()) * std::mem::size_of::<f64>()
    })
}

/// Bytes of pack-buffer capacity retained by *this thread* for `C64`
/// nests.
pub fn pack_footprint_bytes_c64() -> usize {
    PACK_BUFS_C64.with(|bufs| {
        let (ap, bp) = &*bufs.borrow();
        (ap.capacity() + bp.capacity()) * std::mem::size_of::<C64>()
    })
}

/// Bytes of pack-buffer capacity retained by *this thread* for `f32`
/// nests.
pub fn pack_footprint_bytes_f32() -> usize {
    PACK_BUFS_F32.with(|bufs| {
        let (ap, bp) = &*bufs.borrow();
        (ap.capacity() + bp.capacity()) * std::mem::size_of::<f32>()
    })
}

/// Bytes of pack-buffer capacity retained by *this thread* for `C32`
/// nests.
pub fn pack_footprint_bytes_c32() -> usize {
    PACK_BUFS_C32.with(|bufs| {
        let (ap, bp) = &*bufs.borrow();
        (ap.capacity() + bp.capacity()) * std::mem::size_of::<C32>()
    })
}

/// Pack-buffer requirement of one `m x n x k` nest for element type `T`
/// (both strips summed): what [`gemm_into_with`] will retain after a
/// warm-up call of this shape.
pub fn pack_req<T: GemmScalar>(m: usize, n: usize, k: usize) -> tseig_matrix::MemReq {
    let kern = T::kernel();
    let kc = KC.min(k.max(1));
    let a_need = kern.mc.min(m.max(1)).div_ceil(kern.mr) * kern.mr * kc;
    let b_need = kern.nc.min(n.max(1)).div_ceil(kern.nr) * kern.nr * kc;
    tseig_matrix::MemReq::of::<T>(a_need + b_need)
}

impl GemmScalar for f64 {
    #[inline]
    fn kernel() -> &'static MicroKernel<f64> {
        super::simd::selected()
    }

    #[inline]
    fn with_pack_bufs<R>(f: impl FnOnce(&mut Vec<f64>, &mut Vec<f64>) -> R) -> R {
        PACK_BUFS_F64.with(|bufs| {
            let (ap, bp) = &mut *bufs.borrow_mut();
            f(ap, bp)
        })
    }
}

impl GemmScalar for C64 {
    #[inline]
    fn kernel() -> &'static MicroKernel<C64> {
        <C64 as SimdScalar>::selected()
    }

    #[inline]
    fn with_pack_bufs<R>(f: impl FnOnce(&mut Vec<C64>, &mut Vec<C64>) -> R) -> R {
        PACK_BUFS_C64.with(|bufs| {
            let (ap, bp) = &mut *bufs.borrow_mut();
            f(ap, bp)
        })
    }
}

impl GemmScalar for f32 {
    #[inline]
    fn kernel() -> &'static MicroKernel<f32> {
        <f32 as SimdScalar>::selected()
    }

    #[inline]
    fn with_pack_bufs<R>(f: impl FnOnce(&mut Vec<f32>, &mut Vec<f32>) -> R) -> R {
        PACK_BUFS_F32.with(|bufs| {
            let (ap, bp) = &mut *bufs.borrow_mut();
            f(ap, bp)
        })
    }
}

impl GemmScalar for C32 {
    #[inline]
    fn kernel() -> &'static MicroKernel<C32> {
        <C32 as SimdScalar>::selected()
    }

    #[inline]
    fn with_pack_bufs<R>(f: impl FnOnce(&mut Vec<C32>, &mut Vec<C32>) -> R) -> R {
        PACK_BUFS_C32.with(|bufs| {
            let (ap, bp) = &mut *bufs.borrow_mut();
            f(ap, bp)
        })
    }
}

/// Stored dimensions `(rows, cols)` of the operand behind `op(X)` when
/// `op(X)` is `rows_of_op x cols_of_op`.
fn op_dims(op: Op, rows_of_op: usize, cols_of_op: usize) -> (usize, usize) {
    match op {
        Op::No => (rows_of_op, cols_of_op),
        Op::Trans | Op::ConjTrans => (cols_of_op, rows_of_op),
    }
}

/// Entry contract shared by the generic `gemm`-shaped entry points
/// (mirror of the `f64` contract in [`super`], on the [`Op`]
/// vocabulary).
#[allow(clippy::too_many_arguments)]
fn gemm_contract<T: Scalar>(
    kernel: &str,
    opa: Op,
    opb: Op,
    m: usize,
    n: usize,
    k: usize,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &[T],
    ldc: usize,
) {
    if !contract::enabled() {
        return;
    }
    let (ar, ac) = op_dims(opa, m, k);
    let (br, bc) = op_dims(opb, k, n);
    contract::require_mat(kernel, "a", a, ar, ac, lda);
    contract::require_mat(kernel, "b", b, br, bc, ldb);
    contract::require_mat(kernel, "c", c, m, n, ldc);
    contract::require_no_alias(kernel, "a", a, "c", c);
    contract::require_no_alias(kernel, "b", b, "c", c);
    contract::require_finite_mat(kernel, "a", a, ar, ac, lda);
    contract::require_finite_mat(kernel, "b", b, br, bc, ldb);
}

/// Estimated memory traffic of one packed `gemm` call, in bytes, on the
/// packed-engine model: `A` is packed once per `jc` panel (read +
/// write), `B` once in total, and `C` is read+written once per
/// rank-`KC` update. `nc` is the column-panel width of the kernel that
/// will run the nest.
pub fn packed_bytes<T: Scalar>(nc: usize, m: usize, n: usize, k: usize) -> u64 {
    let njc = n.div_ceil(nc.max(1)).max(1) as u64;
    let npc = k.div_ceil(KC).max(1) as u64;
    let (m, n, k) = (m as u64, n as u64, k as u64);
    T::BYTES * (2 * m * k * njc + 2 * k * n + 2 * m * n * npc)
}

/// `C <- alpha op(A) op(B) + beta C` on the packed engine, serial.
///
/// `op(A)` is `m x k`, `op(B)` is `k x n`, `C` is `m x n`; all
/// column-major with the given leading dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm<T: GemmScalar>(
    opa: Op,
    opb: Op,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    let kern = T::kernel();
    gemm_contract("engine::gemm", opa, opb, m, n, k, a, lda, b, ldb, c, ldc);
    add(Level::L3, T::MULADD_FLOPS * (m * n * k) as u64);
    add_bytes(Level::L3, packed_bytes::<T>(kern.nc, m, n, k));
    scale_c(beta, m, n, c, ldc);
    if alpha == T::ZERO || m == 0 || n == 0 || k == 0 {
        return;
    }
    gemm_into_with(kern, opa, opb, m, n, k, alpha, a, lda, b, ldb, c, ldc);
}

/// [`gemm`] forced through a specific dispatch path — the generic
/// counterpart of the `f64` `blas3::gemm_with_kernel`, and the public
/// entry for differential tests and benches that compare ISA paths of
/// one element type in a single process. Production code goes through
/// [`gemm`], which picks `T::kernel()`.
#[allow(clippy::too_many_arguments)]
pub fn gemm_with_kernel<T: GemmScalar>(
    kern: &MicroKernel<T>,
    opa: Op,
    opb: Op,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    gemm_contract("engine::gemm", opa, opb, m, n, k, a, lda, b, ldb, c, ldc);
    add(Level::L3, T::MULADD_FLOPS * (m * n * k) as u64);
    add_bytes(Level::L3, packed_bytes::<T>(kern.nc, m, n, k));
    scale_c(beta, m, n, c, ldc);
    if alpha == T::ZERO || m == 0 || n == 0 || k == 0 {
        return;
    }
    gemm_into_with(kern, opa, opb, m, n, k, alpha, a, lda, b, ldb, c, ldc);
}

/// Parallel [`gemm`]: the same packed nest behind the same two rayon
/// splits as the `f64` `gemm_par` (disjoint `jc` column panels when the
/// problem is wide, private-accumulator `ic` row blocks when tall and
/// narrow), falling back to the serial nest when the fork/join overhead
/// would dominate.
#[allow(clippy::too_many_arguments)]
pub fn gemm_par<T: GemmScalar>(
    opa: Op,
    opb: Op,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    let work = m.saturating_mul(n).saturating_mul(k);
    let threads = rayon::current_num_threads();
    if work < 64 * 64 * 64 || threads == 1 {
        gemm(opa, opb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
        return;
    }
    gemm_contract(
        "engine::gemm_par",
        opa,
        opb,
        m,
        n,
        k,
        a,
        lda,
        b,
        ldb,
        c,
        ldc,
    );
    add(Level::L3, T::MULADD_FLOPS * (m * n * k) as u64);
    add_bytes(Level::L3, packed_bytes::<T>(T::kernel().nc, m, n, k));
    if alpha == T::ZERO || k == 0 {
        scale_c(beta, m, n, c, ldc);
        return;
    }
    if m == 0 || n == 0 {
        return;
    }
    par_nest(
        T::kernel(),
        threads,
        opa,
        opb,
        m,
        n,
        k,
        alpha,
        a,
        lda,
        b,
        ldb,
        beta,
        c,
        ldc,
    );
}

/// Accumulate-only packed nest: `C += alpha op(A) op(B)` with no
/// scaling, no contracts and no counters — the building block for
/// blocked structured kernels (`zher2k`/`zhemm` wrappers) that do their
/// own accounting at the entry point, exactly as the `f64` `syr2k`/
/// `symm` family uses its private `gemm_into`.
#[allow(clippy::too_many_arguments)]
pub fn gemm_into<T: GemmScalar>(
    opa: Op,
    opb: Op,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    if alpha == T::ZERO || m == 0 || n == 0 || k == 0 {
        return;
    }
    gemm_into_with(
        T::kernel(),
        opa,
        opb,
        m,
        n,
        k,
        alpha,
        a,
        lda,
        b,
        ldb,
        c,
        ldc,
    );
}

/// The two-way parallel split over the packed nest: no contracts, no
/// counters, and the caller has already rejected the degenerate shapes
/// (`alpha == 0`, any zero dimension). Shared verbatim by the `f64`
/// `gemm_par` wrapper in [`super`] and the generic [`gemm_par`] here —
/// the panel arithmetic is element-type independent.
#[allow(clippy::too_many_arguments)]
pub(crate) fn par_nest<T: GemmScalar>(
    kern: &'static MicroKernel<T>,
    threads: usize,
    opa: Op,
    opb: Op,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    let threads = threads.max(1);
    let (mr, nr) = (kern.mr, kern.nr);
    if n >= 2 * nr * threads || m < 2 * mr * threads {
        // Column-panel split of the jc loop: two NR-aligned panels per
        // worker (NR = the dispatched tile width); panels are disjoint
        // column ranges of C, data-race free by construction.
        let jb = n
            .div_ceil(2 * threads)
            .next_multiple_of(nr)
            .max(nr)
            .min(n.max(1));
        c[..(n - 1) * ldc + m]
            .par_chunks_mut(jb * ldc)
            .enumerate()
            .for_each(|(p, cpanel)| {
                let j0 = p * jb;
                let jn = jb.min(n - j0);
                // Panel disjointness invariants: every worker's column
                // range starts on an NR boundary and stays inside C.
                debug_assert_eq!(j0 % nr, 0, "jc panel start not NR-aligned");
                debug_assert!(j0 < n && jn > 0, "empty jc panel scheduled");
                debug_assert!(
                    cpanel.len() >= (jn - 1) * ldc + m,
                    "jc panel does not cover its {jn} columns of C"
                );
                let bsub = match opb {
                    Op::No => &b[j0 * ldb..],
                    Op::Trans | Op::ConjTrans => &b[j0..],
                };
                scale_c(beta, m, jn, cpanel, ldc);
                gemm_into_with(
                    kern, opa, opb, m, jn, k, alpha, a, lda, bsub, ldb, cpanel, ldc,
                );
            });
    } else {
        // Row-block split of the ic loop: C's rows are strided slices
        // that cannot be handed out as disjoint `&mut`, so each worker
        // computes its MR-aligned row block into a private buffer;
        // the (cheap, O(mn)) reduction adds them back serially.
        let ib = m
            .div_ceil(2 * threads)
            .next_multiple_of(mr)
            .max(mr)
            .min(m.max(1));
        let blocks: Vec<usize> = (0..m.div_ceil(ib)).collect();
        let partials: Vec<(usize, usize, Vec<T>)> = blocks
            .into_par_iter()
            .map(|p| {
                let i0 = p * ib;
                let mb = ib.min(m - i0);
                // Block disjointness invariants: every worker's row range
                // starts on an MR boundary and stays inside C.
                debug_assert_eq!(i0 % mr, 0, "ic block start not MR-aligned");
                debug_assert!(i0 < m && mb > 0, "empty ic block scheduled");
                let asub = match opa {
                    Op::No => &a[i0..],
                    Op::Trans | Op::ConjTrans => &a[i0 * lda..],
                };
                let mut pbuf = vec![T::ZERO; mb * n];
                gemm_into_with(
                    kern, opa, opb, mb, n, k, alpha, asub, lda, b, ldb, &mut pbuf, mb,
                );
                (i0, mb, pbuf)
            })
            .collect();
        scale_c(beta, m, n, c, ldc);
        for (i0, mb, pbuf) in partials {
            for j in 0..n {
                let src = &pbuf[j * mb..(j + 1) * mb];
                let dst = &mut c[i0 + j * ldc..][..mb];
                for (d, s) in dst.iter_mut().zip(src) {
                    *d += *s;
                }
            }
        }
    }
}

/// The packed loop nest: `C += alpha op(A) op(B)`, no scaling, no flop
/// accounting, on an explicit microkernel — the cache blocking and the
/// packing formats follow the kernel's `(MR, NR)` shape.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_into_with<T: GemmScalar>(
    kern: &MicroKernel<T>,
    opa: Op,
    opb: Op,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    T::with_pack_bufs(|ap, bp| {
        // Bounded retention (once per nest, against the nest's maximum
        // block shapes): a worker that ran one huge solve must not pin
        // peak-sized pack buffers for the rest of its life.
        let kc_max = KC.min(k);
        shrink_pack_buf(ap, kern.mc.min(m).div_ceil(kern.mr) * kern.mr * kc_max);
        shrink_pack_buf(bp, kern.nc.min(n).div_ceil(kern.nr) * kern.nr * kc_max);
        let mut jc = 0;
        while jc < n {
            let nc = kern.nc.min(n - jc);
            let mut pc = 0;
            while pc < k {
                let kc = KC.min(k - pc);
                pack_b(opb, b, ldb, pc, jc, kc, nc, kern.nr, bp);
                let mut ic = 0;
                while ic < m {
                    let mc = kern.mc.min(m - ic);
                    pack_a(opa, a, lda, ic, pc, mc, kc, kern.mr, ap);
                    macrokernel(kern, mc, nc, kc, alpha, ap, bp, ic, jc, c, ldc);
                    ic += mc;
                }
                pc += kc;
            }
            jc += nc;
        }
    });
}

/// All `MR x NR` tiles of one `(ic, jc, pc)` block: `jr` outer over `B`
/// strips, `ir` inner over `A` strips, so the whole packed `A` panel
/// (L2-resident) is swept once per `B` strip (L1-resident).
#[allow(clippy::too_many_arguments)]
fn macrokernel<T: 'static + Copy>(
    kern: &MicroKernel<T>,
    mc: usize,
    nc: usize,
    kc: usize,
    alpha: T,
    ap: &[T],
    bp: &[T],
    ic: usize,
    jc: usize,
    c: &mut [T],
    ldc: usize,
) {
    let (mr, nr) = (kern.mr, kern.nr);
    let mstrips = mc.div_ceil(mr);
    let nstrips = nc.div_ceil(nr);
    for t in 0..nstrips {
        let nr_eff = nr.min(nc - t * nr);
        let bstrip = &bp[t * nr * kc..(t + 1) * nr * kc];
        for s in 0..mstrips {
            let mr_eff = mr.min(mc - s * mr);
            let astrip = &ap[s * mr * kc..(s + 1) * mr * kc];
            let off = (ic + s * mr) + (jc + t * nr) * ldc;
            kern.run(
                kc,
                alpha,
                astrip,
                bstrip,
                &mut c[off..],
                ldc,
                mr_eff,
                nr_eff,
            );
        }
    }
}

/// Pack `op(A)[ic..ic+mc, pc..pc+kc]` into `mr`-row strips: element
/// `(i, p)` of strip `s` lands at `buf[s*mr*kc + p*mr + i]`, short edge
/// strips zero-padded to `mr` rows. `No`: strip columns are contiguous
/// column segments of `A`. `Trans`/`ConjTrans`: strip rows are
/// contiguous column segments of `A` — the transpose is absorbed here,
/// in O(mk) work, and `ConjTrans` additionally conjugates each gathered
/// value so the microkernel never sees a conjugation.
#[allow(clippy::too_many_arguments)]
fn pack_a<T: Scalar>(
    opa: Op,
    a: &[T],
    lda: usize,
    ic: usize,
    pc: usize,
    mc: usize,
    kc: usize,
    mr: usize,
    buf: &mut Vec<T>,
) {
    let strips = mc.div_ceil(mr);
    let need = strips * mr * kc;
    if buf.len() < need {
        buf.resize(need, T::ZERO);
    }
    for s in 0..strips {
        let r0 = s * mr;
        let rows = mr.min(mc - r0);
        let dst = &mut buf[s * mr * kc..(s + 1) * mr * kc];
        match opa {
            Op::No => {
                for p in 0..kc {
                    let src = &a[ic + r0 + (pc + p) * lda..][..rows];
                    let d = &mut dst[p * mr..p * mr + mr];
                    d[..rows].copy_from_slice(src);
                    if rows < mr {
                        d[rows..].fill(T::ZERO);
                    }
                }
            }
            Op::Trans => {
                for i in 0..rows {
                    let src = &a[pc + (ic + r0 + i) * lda..][..kc];
                    for (p, &v) in src.iter().enumerate() {
                        dst[p * mr + i] = v;
                    }
                }
                if rows < mr {
                    for p in 0..kc {
                        dst[p * mr + rows..(p + 1) * mr].fill(T::ZERO);
                    }
                }
            }
            Op::ConjTrans => {
                for i in 0..rows {
                    let src = &a[pc + (ic + r0 + i) * lda..][..kc];
                    for (p, &v) in src.iter().enumerate() {
                        dst[p * mr + i] = v.conj();
                    }
                }
                if rows < mr {
                    for p in 0..kc {
                        dst[p * mr + rows..(p + 1) * mr].fill(T::ZERO);
                    }
                }
            }
        }
    }
}

/// Pack `op(B)[pc..pc+kc, jc..jc+nc]` into `nr`-column strips: element
/// `(p, j)` of strip `t` lands at `buf[t*nr*kc + p*nr + j]`, short edge
/// strips zero-padded to `nr` columns. As with [`pack_a`], `ConjTrans`
/// conjugates during the gather.
#[allow(clippy::too_many_arguments)]
fn pack_b<T: Scalar>(
    opb: Op,
    b: &[T],
    ldb: usize,
    pc: usize,
    jc: usize,
    kc: usize,
    nc: usize,
    nr: usize,
    buf: &mut Vec<T>,
) {
    let strips = nc.div_ceil(nr);
    let need = strips * nr * kc;
    if buf.len() < need {
        buf.resize(need, T::ZERO);
    }
    for t in 0..strips {
        let c0 = t * nr;
        let cols = nr.min(nc - c0);
        let dst = &mut buf[t * nr * kc..(t + 1) * nr * kc];
        match opb {
            Op::No => {
                for j in 0..cols {
                    let src = &b[pc + (jc + c0 + j) * ldb..][..kc];
                    for (p, &v) in src.iter().enumerate() {
                        dst[p * nr + j] = v;
                    }
                }
                if cols < nr {
                    for p in 0..kc {
                        dst[p * nr + cols..(p + 1) * nr].fill(T::ZERO);
                    }
                }
            }
            Op::Trans => {
                for p in 0..kc {
                    let src = &b[jc + c0 + (pc + p) * ldb..][..cols];
                    let d = &mut dst[p * nr..p * nr + nr];
                    d[..cols].copy_from_slice(src);
                    if cols < nr {
                        d[cols..].fill(T::ZERO);
                    }
                }
            }
            Op::ConjTrans => {
                for p in 0..kc {
                    let src = &b[jc + c0 + (pc + p) * ldb..][..cols];
                    let d = &mut dst[p * nr..p * nr + nr];
                    for (j, &v) in src.iter().enumerate() {
                        d[j] = v.conj();
                    }
                    if cols < nr {
                        d[cols..].fill(T::ZERO);
                    }
                }
            }
        }
    }
}

/// `C <- beta C` on the addressed `m x n` region; `beta == 1` is a
/// no-op and `beta == 0` overwrites (so `C` may start uninitialized).
pub(crate) fn scale_c<T: Scalar>(beta: T, m: usize, n: usize, c: &mut [T], ldc: usize) {
    if beta == T::ONE {
        return;
    }
    for j in 0..n {
        let col = &mut c[j * ldc..j * ldc + m];
        if beta == T::ZERO {
            col.fill(T::ZERO);
        } else {
            for v in col {
                *v *= beta;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tseig_matrix::c64;

    /// Naive `op(A) op(B)` oracle over all nine op combinations.
    #[allow(clippy::too_many_arguments)]
    fn gemm_oracle<T: Scalar>(
        opa: Op,
        opb: Op,
        m: usize,
        n: usize,
        k: usize,
        alpha: T,
        a: &[T],
        lda: usize,
        b: &[T],
        ldb: usize,
        beta: T,
        c: &mut [T],
        ldc: usize,
    ) {
        let at = |i: usize, p: usize| match opa {
            Op::No => a[i + p * lda],
            Op::Trans => a[p + i * lda],
            Op::ConjTrans => a[p + i * lda].conj(),
        };
        let bt = |p: usize, j: usize| match opb {
            Op::No => b[p + j * ldb],
            Op::Trans => b[j + p * ldb],
            Op::ConjTrans => b[j + p * ldb].conj(),
        };
        for j in 0..n {
            for i in 0..m {
                let mut acc = T::ZERO;
                for p in 0..k {
                    acc += at(i, p) * bt(p, j);
                }
                c[i + j * ldc] = beta * c[i + j * ldc] + alpha * acc;
            }
        }
    }

    fn cval(i: usize) -> C64 {
        c64((i % 13) as f64 - 6.0, ((i * 7) % 11) as f64 - 5.0)
    }

    #[test]
    fn complex_gemm_matches_oracle_all_ops() {
        let (m, n, k) = (13, 9, 21);
        let (lda, ldb, ldc) = (m.max(k) + 2, k.max(n) + 1, m + 3);
        let a: Vec<C64> = (0..lda * (m.max(k) + 2)).map(cval).collect();
        let b: Vec<C64> = (0..ldb * (k.max(n) + 2)).map(|i| cval(i + 5)).collect();
        let alpha = c64(1.25, -0.5);
        let beta = c64(0.75, 0.25);
        for opa in [Op::No, Op::Trans, Op::ConjTrans] {
            for opb in [Op::No, Op::Trans, Op::ConjTrans] {
                let mut c: Vec<C64> = (0..ldc * n).map(|i| cval(i + 11)).collect();
                let mut want = c.clone();
                gemm(
                    opa, opb, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c, ldc,
                );
                gemm_oracle(
                    opa, opb, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut want, ldc,
                );
                for (i, (&got, &w)) in c.iter().zip(&want).enumerate() {
                    assert!(
                        (got - w).abs() <= 1e-10 * (1.0 + w.abs()),
                        "{opa:?}/{opb:?} idx {i}: {got:?} vs {w:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn complex_gemm_par_matches_serial() {
        let (m, n, k) = (70, 65, 300); // k straddles KC = 256
        let ld = m.max(n).max(k) + 1;
        let a: Vec<C64> = (0..ld * ld).map(cval).collect();
        let b: Vec<C64> = (0..ld * ld).map(|i| cval(i + 3)).collect();
        let mut c1 = vec![C64::ZERO; m * n];
        let mut c2 = vec![C64::ZERO; m * n];
        gemm(
            Op::ConjTrans,
            Op::No,
            m,
            n,
            k,
            C64::ONE,
            &a,
            ld,
            &b,
            ld,
            C64::ZERO,
            &mut c1,
            m,
        );
        gemm_par(
            Op::ConjTrans,
            Op::No,
            m,
            n,
            k,
            C64::ONE,
            &a,
            ld,
            &b,
            ld,
            C64::ZERO,
            &mut c2,
            m,
        );
        // Both run the same packed nest over the same KC split; the
        // parallel split only partitions C, so results are identical.
        assert_eq!(c1, c2);
    }

    #[test]
    fn f64_engine_path_matches_f64_public_gemm_bitwise() {
        // The generic engine monomorphized at f64 must be the very same
        // computation as the historical f64 entry point.
        let (m, n, k) = (37, 29, 300);
        let ld = 40usize.max(k) + 1;
        let a: Vec<f64> = (0..ld * ld).map(|i| (i % 17) as f64 - 8.0).collect();
        let b: Vec<f64> = (0..ld * ld).map(|i| (i % 19) as f64 - 9.0).collect();
        let mut c1 = vec![0.25f64; m * n];
        let mut c2 = c1.clone();
        super::super::gemm(
            super::super::Trans::Yes,
            super::super::Trans::No,
            m,
            n,
            k,
            1.5,
            &a,
            ld,
            &b,
            ld,
            0.5,
            &mut c1,
            m,
        );
        gemm(
            Op::Trans,
            Op::No,
            m,
            n,
            k,
            1.5,
            &a,
            ld,
            &b,
            ld,
            0.5,
            &mut c2,
            m,
        );
        assert_eq!(c1, c2);
    }

    #[test]
    fn conj_in_pack_is_identity_for_f64() {
        // For f64, ConjTrans must be exactly Trans (conj is identity).
        let (m, n, k) = (11, 7, 5);
        let a: Vec<f64> = (0..k * m).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..n * k).map(|i| (i as f64).sin()).collect();
        let mut c1 = vec![0.0f64; m * n];
        let mut c2 = vec![0.0f64; m * n];
        gemm(
            Op::Trans,
            Op::ConjTrans,
            m,
            n,
            k,
            1.0,
            &a,
            k,
            &b,
            n,
            0.0,
            &mut c1,
            m,
        );
        gemm(
            Op::ConjTrans,
            Op::Trans,
            m,
            n,
            k,
            1.0,
            &a,
            k,
            &b,
            n,
            0.0,
            &mut c2,
            m,
        );
        assert_eq!(c1, c2);
    }
}
