//! Differential tests for the SIMD microkernel dispatch paths.
//!
//! Every kernel `simd::available()` reports on this machine must agree
//! with the portable scalar microkernel. The kernels share the `KC`
//! k-blocking and accumulate each `C(i, j)` as one k-ordered FMA chain
//! with a mul-then-add writeback, so agreement is **bitwise**, not just
//! within tolerance — asserted exactly here, with a 2-ulp bound kept as
//! the documented contract should a future kernel trade that away.
//!
//! The `TSEIG_SIMD` env override itself is process-global (cached at
//! first use), so it cannot be toggled inside one test process; the CI
//! job that reruns this suite under `TSEIG_SIMD=scalar` covers the
//! override path end to end.

use proptest::prelude::*;
use tseig_kernels::blas3::{gemm_with_kernel, simd, Trans};

fn rand_vec(len: usize, seed: u64) -> Vec<f64> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// |a - b| in units in the last place of b (0 when bitwise equal).
fn ulp_diff(a: f64, b: f64) -> u64 {
    if a == b {
        return 0;
    }
    let (ia, ib) = (a.to_bits() as i64, b.to_bits() as i64);
    // Map the sign-magnitude bit pattern onto a monotonic line.
    let fix = |i: i64| if i < 0 { i64::MIN - i } else { i };
    fix(ia).abs_diff(fix(ib))
}

/// Run one gemm shape through every available dispatch path and compare
/// against the scalar kernel.
#[allow(clippy::too_many_arguments)]
fn check_all_paths(
    ta: Trans,
    tb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    beta: f64,
    seed: u64,
) {
    let (am, an) = match ta {
        Trans::No => (m, k),
        Trans::Yes => (k, m),
    };
    let (bm, bn) = match tb {
        Trans::No => (k, n),
        Trans::Yes => (n, k),
    };
    let a = rand_vec((am * an).max(1), seed);
    let b = rand_vec((bm * bn).max(1), seed + 1);
    let c0 = rand_vec(m * n, seed + 2);

    let mut want = c0.clone();
    gemm_with_kernel(
        &simd::SCALAR,
        ta,
        tb,
        m,
        n,
        k,
        alpha,
        &a,
        am.max(1),
        &b,
        bm.max(1),
        beta,
        &mut want,
        m,
    );

    for kern in simd::available() {
        let mut got = c0.clone();
        gemm_with_kernel(
            kern,
            ta,
            tb,
            m,
            n,
            k,
            alpha,
            &a,
            am.max(1),
            &b,
            bm.max(1),
            beta,
            &mut got,
            m,
        );
        for (idx, (&g, &w)) in got.iter().zip(&want).enumerate() {
            let ulps = ulp_diff(g, w);
            prop_assert!(
                ulps <= 2,
                "kernel {} differs from scalar by {ulps} ulps at flat index {idx} \
                 (m={m} n={n} k={k} got={g:e} want={w:e})",
                kern.name
            );
            prop_assert!(
                g.to_bits() == w.to_bits(),
                "kernel {} not bitwise equal to scalar at flat index {idx} \
                 (m={m} n={n} k={k} got={g:e} want={w:e})",
                kern.name
            );
        }
    }
}

#[test]
fn dispatch_covers_this_machine() {
    // Sanity on the dispatch table itself: scalar is always present and
    // always last (the fallback), names are unique, and the default
    // selection is one of the available kernels.
    let avail = simd::available();
    assert_eq!(avail.last().unwrap().name, "scalar");
    let mut names: Vec<&str> = avail.iter().map(|k| k.name).collect();
    names.dedup();
    assert_eq!(names.len(), avail.len());
    assert!(avail.iter().any(|k| std::ptr::eq(*k, simd::selected())));
    // by_name round-trips every available kernel.
    for k in avail {
        assert!(std::ptr::eq(simd::by_name(k.name).unwrap(), *k));
    }
}

#[test]
fn dispatch_paths_match_scalar_on_tail_shapes() {
    // Deterministic sweep of the awkward corners: dimensions below,
    // at, and just above every kernel's MR/NR, and k straddling KC.
    let mut dims: Vec<usize> = vec![1, 2, 3];
    for kern in simd::available() {
        dims.extend_from_slice(&[kern.mr - 1, kern.mr, kern.mr + 1, kern.nr, kern.nr + 1]);
    }
    dims.sort_unstable();
    dims.dedup();
    let mut seed = 1000;
    for &m in &dims {
        for &n in &dims {
            for k in [1usize, 7, 255, 256, 257] {
                seed += 3;
                check_all_paths(Trans::No, Trans::No, m, n, k, 1.0, 1.0, seed);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Random ragged shapes, all transpose combinations and scalars:
    /// every dispatch path is bitwise-consistent with the scalar
    /// microkernel (and hence trivially within the 2-ulp contract).
    #[test]
    fn dispatch_paths_match_scalar_ragged(
        m in 1usize..70, n in 1usize..70, k in 0usize..300,
        alpha in -2.0f64..2.0, beta in -2.0f64..2.0,
        ta in 0u8..2, tb in 0u8..2, seed in 0u64..10_000,
    ) {
        let (ta, tb) = (
            if ta == 0 { Trans::No } else { Trans::Yes },
            if tb == 0 { Trans::No } else { Trans::Yes },
        );
        check_all_paths(ta, tb, m, n, k, alpha, beta, seed);
    }
}
