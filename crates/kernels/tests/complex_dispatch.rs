//! Differential tests for the per-type SIMD dispatch paths of the
//! generic packed engine (f32 / C32 / C64; the `f64` table has its own
//! suite in `simd_dispatch.rs`).
//!
//! Two independent contracts are pinned here:
//!
//! 1. **Bitwise path equivalence.** Every kernel `T::available()`
//!    reports must agree *bitwise* with that type's portable scalar
//!    microkernel: the complex kernels keep two k-ordered real FMA
//!    chains per `C(i, j)` and combine them with the one shared scalar
//!    routine, so vector width must not change a single bit. The
//!    `TSEIG_SIMD` override is process-global, so the cross-value runs
//!    (`scalar`/`avx2`/`avx512`) live in the CI matrix, not here.
//! 2. **Correctness against a naive oracle.** The packed engine with
//!    the *selected* kernel matches a textbook triple loop evaluated at
//!    higher precision, within a k-scaled tolerance, over ragged shapes
//!    and all `Op` combinations (`No`/`Trans`/`ConjTrans`) — this is
//!    what certifies the conjugation-in-packing fold.

use proptest::prelude::*;
use tseig_kernels::blas3::engine::{gemm, gemm_with_kernel, GemmScalar};
use tseig_kernels::blas3::simd::SimdScalar;
use tseig_kernels::blas3::Op;
use tseig_matrix::{C32, C64};

/// Exact bit-pattern equality per element type (plain `==` would let
/// `-0.0 == 0.0` and NaN mismatches slip through).
trait BitEq: Copy {
    fn bit_eq(self, other: Self) -> bool;
}

impl BitEq for f32 {
    fn bit_eq(self, other: Self) -> bool {
        self.to_bits() == other.to_bits()
    }
}

impl BitEq for f64 {
    fn bit_eq(self, other: Self) -> bool {
        self.to_bits() == other.to_bits()
    }
}

impl BitEq for C32 {
    fn bit_eq(self, other: Self) -> bool {
        self.re.to_bits() == other.re.to_bits() && self.im.to_bits() == other.im.to_bits()
    }
}

impl BitEq for C64 {
    fn bit_eq(self, other: Self) -> bool {
        self.re.to_bits() == other.re.to_bits() && self.im.to_bits() == other.im.to_bits()
    }
}

fn rand_pairs(len: usize, seed: u64) -> Vec<(f64, f64)> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| (rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect()
}

fn op_dims(op: Op, rows: usize, cols: usize) -> (usize, usize) {
    match op {
        Op::No => (rows, cols),
        Op::Trans | Op::ConjTrans => (cols, rows),
    }
}

/// Run one shape through every available dispatch path of `T` and
/// require bitwise agreement with `T`'s scalar kernel (always the last
/// entry of the availability table).
#[allow(clippy::too_many_arguments)]
fn check_all_paths<T: GemmScalar + BitEq + std::fmt::Debug>(
    opa: Op,
    opb: Op,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    beta: T,
    seed: u64,
    from: impl Fn(f64, f64) -> T,
) {
    let (am, an) = op_dims(opa, m, k);
    let (bm, bn) = op_dims(opb, k, n);
    let a: Vec<T> = rand_pairs((am * an).max(1), seed)
        .into_iter()
        .map(|(x, y)| from(x, y))
        .collect();
    let b: Vec<T> = rand_pairs((bm * bn).max(1), seed + 1)
        .into_iter()
        .map(|(x, y)| from(x, y))
        .collect();
    let c0: Vec<T> = rand_pairs(m * n, seed + 2)
        .into_iter()
        .map(|(x, y)| from(x, y))
        .collect();

    let avail = T::available();
    let scalar = *avail.last().unwrap();
    let mut want = c0.clone();
    gemm_with_kernel(
        scalar,
        opa,
        opb,
        m,
        n,
        k,
        alpha,
        &a,
        am.max(1),
        &b,
        bm.max(1),
        beta,
        &mut want,
        m,
    );

    for kern in avail {
        let mut got = c0.clone();
        gemm_with_kernel(
            kern,
            opa,
            opb,
            m,
            n,
            k,
            alpha,
            &a,
            am.max(1),
            &b,
            bm.max(1),
            beta,
            &mut got,
            m,
        );
        for (idx, (&g, &w)) in got.iter().zip(&want).enumerate() {
            prop_assert!(
                g.bit_eq(w),
                "kernel {} not bitwise equal to scalar at flat index {idx} \
                 (opa={opa:?} opb={opb:?} m={m} n={n} k={k} got={g:?} want={w:?})",
                kern.name
            );
        }
    }
}

/// Naive triple-loop oracle in the *wide* complex type: `op` semantics
/// spelled out entry-wise, accumulation in C64 regardless of `T`.
#[allow(clippy::too_many_arguments)]
fn naive_gemm_c64(
    opa: Op,
    opb: Op,
    m: usize,
    n: usize,
    k: usize,
    alpha: C64,
    a: &[C64],
    lda: usize,
    b: &[C64],
    ldb: usize,
    beta: C64,
    c: &mut [C64],
    ldc: usize,
) {
    let fetch = |op: Op, s: &[C64], ld: usize, i: usize, j: usize| match op {
        Op::No => s[i + j * ld],
        Op::Trans => s[j + i * ld],
        Op::ConjTrans => s[j + i * ld].conj(),
    };
    for j in 0..n {
        for i in 0..m {
            let mut acc = C64::ZERO;
            for p in 0..k {
                acc += fetch(opa, a, lda, i, p) * fetch(opb, b, ldb, p, j);
            }
            c[i + j * ldc] = alpha * acc + beta * c[i + j * ldc];
        }
    }
}

const ALL_OPS: [Op; 3] = [Op::No, Op::Trans, Op::ConjTrans];

fn op_from(sel: u8) -> Op {
    ALL_OPS[sel as usize % 3]
}

// ---------------------------------------------------------------------
// Dispatch-table sanity per element type.
// ---------------------------------------------------------------------

fn check_table<T: SimdScalar>() {
    let avail = T::available();
    assert_eq!(avail.last().unwrap().name, "scalar");
    let mut names: Vec<&str> = avail.iter().map(|k| k.name).collect();
    names.dedup();
    assert_eq!(names.len(), avail.len(), "duplicate kernel names");
    assert!(avail.iter().any(|k| std::ptr::eq(*k, T::selected())));
    for k in avail {
        assert!(std::ptr::eq(T::by_name(k.name).unwrap(), *k));
    }
}

#[test]
fn dispatch_tables_cover_this_machine_per_type() {
    check_table::<f32>();
    check_table::<f64>();
    check_table::<C32>();
    check_table::<C64>();
    // The four tables expose the same ISA names on one machine: the
    // complex and f32 kernels gate on the same feature detection.
    let names = |v: &[&'static str]| v.join(",");
    let f64n: Vec<_> = <f64 as SimdScalar>::available()
        .iter()
        .map(|k| k.name)
        .collect();
    for (t, got) in [
        (
            "f32",
            <f32 as SimdScalar>::available()
                .iter()
                .map(|k| k.name)
                .collect::<Vec<_>>(),
        ),
        (
            "C32",
            <C32 as SimdScalar>::available()
                .iter()
                .map(|k| k.name)
                .collect::<Vec<_>>(),
        ),
        (
            "C64",
            <C64 as SimdScalar>::available()
                .iter()
                .map(|k| k.name)
                .collect::<Vec<_>>(),
        ),
    ] {
        assert_eq!(names(&got), names(&f64n), "{t} table diverges from f64");
    }
}

// ---------------------------------------------------------------------
// Deterministic tail-shape sweeps, bitwise across paths.
// ---------------------------------------------------------------------

fn tail_dims<T: SimdScalar>() -> Vec<usize> {
    let mut dims: Vec<usize> = vec![1, 2, 3];
    for kern in T::available() {
        dims.extend_from_slice(&[kern.mr - 1, kern.mr, kern.mr + 1, kern.nr, kern.nr + 1]);
    }
    dims.sort_unstable();
    dims.dedup();
    dims.retain(|&d| d > 0);
    dims
}

#[test]
fn c64_paths_match_scalar_on_tail_shapes() {
    let mut seed = 2000;
    for &m in &tail_dims::<C64>() {
        for &n in &tail_dims::<C64>() {
            for k in [1usize, 7, 255, 256, 257] {
                seed += 3;
                check_all_paths(
                    Op::No,
                    Op::ConjTrans,
                    m,
                    n,
                    k,
                    C64::ONE,
                    C64 { re: 0.5, im: -1.0 },
                    seed,
                    |x, y| C64 { re: x, im: y },
                );
            }
        }
    }
}

#[test]
fn c32_paths_match_scalar_on_tail_shapes() {
    let mut seed = 3000;
    for &m in &tail_dims::<C32>() {
        for &n in &tail_dims::<C32>() {
            for k in [1usize, 7, 255, 256, 257] {
                seed += 3;
                check_all_paths(
                    Op::No,
                    Op::ConjTrans,
                    m,
                    n,
                    k,
                    C32 { re: 1.0, im: 0.0 },
                    C32 { re: 0.5, im: -1.0 },
                    seed,
                    |x, y| C32 {
                        re: x as f32,
                        im: y as f32,
                    },
                );
            }
        }
    }
}

#[test]
fn f32_paths_match_scalar_on_tail_shapes() {
    let mut seed = 4000;
    for &m in &tail_dims::<f32>() {
        for &n in &tail_dims::<f32>() {
            for k in [1usize, 7, 255, 256, 257] {
                seed += 3;
                check_all_paths(Op::No, Op::No, m, n, k, 1.0f32, 1.0f32, seed, |x, _| {
                    x as f32
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Ragged all-Op property tests: bitwise across paths, and the selected
// path against the wide naive oracle.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn c64_paths_match_scalar_ragged(
        m in 1usize..40, n in 1usize..40, k in 0usize..280,
        ar in -2.0f64..2.0, ai in -2.0f64..2.0,
        br in -2.0f64..2.0, bi in -2.0f64..2.0,
        opa in 0u8..3, opb in 0u8..3, seed in 0u64..10_000,
    ) {
        check_all_paths(
            op_from(opa), op_from(opb), m, n, k,
            C64 { re: ar, im: ai }, C64 { re: br, im: bi },
            seed, |x, y| C64 { re: x, im: y },
        );
    }

    #[test]
    fn c32_paths_match_scalar_ragged(
        m in 1usize..40, n in 1usize..40, k in 0usize..280,
        ar in -2.0f64..2.0, ai in -2.0f64..2.0,
        br in -2.0f64..2.0, bi in -2.0f64..2.0,
        opa in 0u8..3, opb in 0u8..3, seed in 0u64..10_000,
    ) {
        check_all_paths(
            op_from(opa), op_from(opb), m, n, k,
            C32 { re: ar as f32, im: ai as f32 }, C32 { re: br as f32, im: bi as f32 },
            seed + 20_000, |x, y| C32 { re: x as f32, im: y as f32 },
        );
    }

    #[test]
    fn f32_paths_match_scalar_ragged(
        m in 1usize..60, n in 1usize..60, k in 0usize..280,
        alpha in -2.0f64..2.0, beta in -2.0f64..2.0,
        opa in 0u8..3, opb in 0u8..3, seed in 0u64..10_000,
    ) {
        check_all_paths(
            op_from(opa), op_from(opb), m, n, k, alpha as f32, beta as f32,
            seed + 40_000, |x, _| x as f32,
        );
    }

    /// The C32 engine (selected path, conj folded into packing) against
    /// the naive C64 triple loop: `|err| <= fudge * (k+2) * eps_f32 *
    /// scale`, where scale bounds every intermediate (entries in the
    /// unit box, |alpha|,|beta| <= 2*sqrt(2)).
    #[test]
    fn c32_engine_matches_wide_naive_oracle(
        m in 1usize..24, n in 1usize..24, k in 0usize..140,
        ar in -2.0f64..2.0, ai in -2.0f64..2.0,
        opa in 0u8..3, opb in 0u8..3, seed in 0u64..10_000,
    ) {
        let (opa, opb) = (op_from(opa), op_from(opb));
        let (am, an) = op_dims(opa, m, k);
        let (bm, bn) = op_dims(opb, k, n);
        let ap = rand_pairs((am * an).max(1), seed + 60_000);
        let bp = rand_pairs((bm * bn).max(1), seed + 60_001);
        let cp = rand_pairs(m * n, seed + 60_002);
        // f32 data, exact in both precisions.
        let narrow = |x: f64| x as f32 as f64;
        let a32: Vec<C32> = ap.iter().map(|&(x, y)| C32 { re: x as f32, im: y as f32 }).collect();
        let b32: Vec<C32> = bp.iter().map(|&(x, y)| C32 { re: x as f32, im: y as f32 }).collect();
        let mut c32: Vec<C32> = cp.iter().map(|&(x, y)| C32 { re: x as f32, im: y as f32 }).collect();
        let a64: Vec<C64> = ap.iter().map(|&(x, y)| C64 { re: narrow(x), im: narrow(y) }).collect();
        let b64: Vec<C64> = bp.iter().map(|&(x, y)| C64 { re: narrow(x), im: narrow(y) }).collect();
        let mut c64v: Vec<C64> = cp.iter().map(|&(x, y)| C64 { re: narrow(x), im: narrow(y) }).collect();
        let alpha32 = C32 { re: ar as f32, im: ai as f32 };
        let alpha64 = C64 { re: narrow(ar), im: narrow(ai) };

        gemm(opa, opb, m, n, k, alpha32, &a32, am.max(1), &b32, bm.max(1),
             C32 { re: 1.0, im: 0.0 }, &mut c32, m);
        naive_gemm_c64(opa, opb, m, n, k, alpha64, &a64, am.max(1), &b64, bm.max(1),
                       C64::ONE, &mut c64v, m);

        let scale = 4.0 * (k as f64 + 2.0);
        let tol = 16.0 * (k as f64 + 2.0) * f32::EPSILON as f64 * scale.max(1.0);
        for (idx, (g, w)) in c32.iter().zip(&c64v).enumerate() {
            let err = ((g.re as f64 - w.re).powi(2) + (g.im as f64 - w.im).powi(2)).sqrt();
            prop_assert!(
                err <= tol,
                "C32 engine off the C64 oracle at {idx}: err={err:e} tol={tol:e} \
                 (opa={opa:?} opb={opb:?} m={m} n={n} k={k})"
            );
        }
    }

    /// Same oracle check for f32 against a naive f64 triple loop.
    #[test]
    fn f32_engine_matches_wide_naive_oracle(
        m in 1usize..24, n in 1usize..24, k in 0usize..140,
        alpha in -2.0f64..2.0,
        opa in 0u8..3, opb in 0u8..3, seed in 0u64..10_000,
    ) {
        let (opa, opb) = (op_from(opa), op_from(opb));
        let (am, an) = op_dims(opa, m, k);
        let (bm, bn) = op_dims(opb, k, n);
        let ap = rand_pairs((am * an).max(1), seed + 80_000);
        let bp = rand_pairs((bm * bn).max(1), seed + 80_001);
        let cp = rand_pairs(m * n, seed + 80_002);
        let a32: Vec<f32> = ap.iter().map(|&(x, _)| x as f32).collect();
        let b32: Vec<f32> = bp.iter().map(|&(x, _)| x as f32).collect();
        let mut c32: Vec<f32> = cp.iter().map(|&(x, _)| x as f32).collect();
        let alpha32 = alpha as f32;

        gemm(opa, opb, m, n, k, alpha32, &a32, am.max(1), &b32, bm.max(1),
             1.0f32, &mut c32, m);

        let fetch = |op: Op, s: &[f32], ld: usize, i: usize, j: usize| match op {
            Op::No => s[i + j * ld] as f64,
            Op::Trans | Op::ConjTrans => s[j + i * ld] as f64,
        };
        let tol = 16.0 * (k as f64 + 2.0) * f32::EPSILON as f64 * (2.0 * k as f64 + 2.0).max(1.0);
        for j in 0..n {
            for i in 0..m {
                let mut acc = 0.0f64;
                for p in 0..k {
                    acc += fetch(opa, &a32, am.max(1), i, p) * fetch(opb, &b32, bm.max(1), p, j);
                }
                let want = alpha32 as f64 * acc + cp[i + j * m].0 as f32 as f64;
                let got = c32[i + j * m] as f64;
                prop_assert!(
                    (got - want).abs() <= tol,
                    "f32 engine off the f64 oracle at ({i},{j}): got={got:e} want={want:e} \
                     tol={tol:e} (opa={opa:?} opb={opb:?} m={m} n={n} k={k})"
                );
            }
        }
    }
}
