//! Property tests for the BLAS and Householder kernels.

use proptest::prelude::*;
use tseig_kernels::blas3::{
    gemm, gemm_par_with, gemm_unpacked, symm_lower_left_par, syr2k_lower, syr2k_lower_par, Trans,
};
use tseig_kernels::householder::{larfb, larfg, larft, Side};
use tseig_kernels::qr::{geqrf, orgqr};
use tseig_matrix::{gen, norms, Matrix};

fn rand_mat(m: usize, n: usize, seed: u64) -> Matrix {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// gemm against the naive oracle, all transpose combinations, random
    /// shapes and scalars.
    #[test]
    fn gemm_matches_oracle(
        m in 1usize..24, n in 1usize..24, k in 1usize..24,
        alpha in -2.0f64..2.0, beta in -2.0f64..2.0,
        ta in 0u8..2, tb in 0u8..2, seed in 0u64..500,
    ) {
        let (ta, tb) = (
            if ta == 0 { Trans::No } else { Trans::Yes },
            if tb == 0 { Trans::No } else { Trans::Yes },
        );
        let a_log = rand_mat(m, k, seed);
        let b_log = rand_mat(k, n, seed + 1);
        let c0 = rand_mat(m, n, seed + 2);
        let a_st = match ta { Trans::No => a_log.clone(), Trans::Yes => a_log.transpose() };
        let b_st = match tb { Trans::No => b_log.clone(), Trans::Yes => b_log.transpose() };
        let mut c = c0.clone();
        gemm(ta, tb, m, n, k, alpha,
             a_st.as_slice(), a_st.rows(), b_st.as_slice(), b_st.rows(),
             beta, c.as_mut_slice(), m);
        let want = a_log.multiply(&b_log).unwrap();
        for j in 0..n {
            for i in 0..m {
                let w = alpha * want[(i, j)] + beta * c0[(i, j)];
                prop_assert!((c[(i, j)] - w).abs() < 1e-11, "({i},{j})");
            }
        }
    }

    /// Blocked QR reconstructs A = Q R with orthogonal Q for any shape
    /// and block size.
    #[test]
    fn qr_reconstruction(m in 1usize..28, n in 1usize..28, nb in 1usize..10, seed in 0u64..500) {
        let a0 = rand_mat(m, n, seed);
        let mut a = a0.clone();
        let kmin = m.min(n);
        let mut tau = vec![0.0; kmin];
        geqrf(m, n, a.as_mut_slice(), m, &mut tau, nb);
        let q = orgqr(m, kmin, a.as_slice(), m, &tau);
        prop_assert!(norms::orthogonality(&q) < 200.0);
        let mut r = Matrix::zeros(m, n);
        for j in 0..n {
            for i in 0..=j.min(m - 1) {
                r[(i, j)] = a[(i, j)];
            }
        }
        prop_assert!(q.multiply(&r).unwrap().approx_eq(&a0, 1e-10));
    }

    /// A block reflector equals the product of its elementary reflectors.
    #[test]
    fn block_reflector_composition(mrows in 4usize..20, k in 1usize..5, seed in 0u64..500) {
        let k = k.min(mrows - 1);
        // Build k random reflectors in forward-columnwise form.
        let mut v = Matrix::zeros(mrows, k);
        let mut taus = vec![0.0; k];
        for c in 0..k {
            let mut tail = rand_mat(mrows - c - 1, 1, seed + c as u64).into_vec();
            let (_, tau) = larfg(0.5, &mut tail);
            v[(c, c)] = 1.0;
            for (i, &val) in tail.iter().enumerate() {
                v[(c + 1 + i, c)] = val;
            }
            taus[c] = tau;
        }
        let mut t = vec![0.0; k * k];
        larft(mrows, k, v.as_slice(), mrows, &taus, &mut t, k);
        // Apply blockwise to a random C and compare against sequential
        // elementary applications.
        let c0 = rand_mat(mrows, 3, seed + 100);
        let mut blocked = c0.clone();
        larfb(Side::Left, Trans::No, mrows, 3, k, v.as_slice(), mrows, &t, k,
              blocked.as_mut_slice(), mrows);
        let mut seq = c0.clone();
        let mut work = vec![0.0; 3];
        for c in (0..k).rev() {
            let u: Vec<f64> = (0..mrows).map(|r| v[(r, c)]).collect();
            tseig_kernels::householder::larf_left(&u, taus[c], mrows, 3, seq.as_mut_slice(), mrows, &mut work);
        }
        prop_assert!(blocked.approx_eq(&seq, 1e-11));
    }

    /// symm and syr2k parallel kernels agree with dense oracles.
    #[test]
    fn symmetric_level3_oracles(m in 1usize..30, k in 1usize..8, seed in 0u64..500) {
        let a = gen::random_symmetric(m, seed);
        let b = rand_mat(m, k, seed + 1);
        let mut c = Matrix::zeros(m, k);
        symm_lower_left_par(m, k, 1.0, a.as_slice(), m, b.as_slice(), m, 0.0, c.as_mut_slice(), m);
        let want = a.multiply(&b).unwrap();
        prop_assert!(c.approx_eq(&want, 1e-10));

        let x = rand_mat(m, k, seed + 2);
        let y = rand_mat(m, k, seed + 3);
        let mut s = Matrix::zeros(m, m);
        syr2k_lower_par(m, k, 1.0, x.as_slice(), m, y.as_slice(), m, 0.0, s.as_mut_slice(), m);
        let xyt = x.multiply(&y.transpose()).unwrap();
        for j in 0..m {
            for i in j..m {
                let w = xyt[(i, j)] + xyt[(j, i)];
                prop_assert!((s[(i, j)] - w).abs() < 1e-10);
            }
        }
    }

    /// The packed gemm agrees with the seed's unpacked kernel on shapes
    /// straddling the MR/NR strip boundaries, including k == 0,
    /// alpha == 0, and a padded ldc whose tail rows must stay untouched.
    #[test]
    fn packed_gemm_matches_unpacked(
        m in 1usize..40, n in 1usize..40, k in 0usize..40,
        alpha_sel in 0u8..4, beta in -2.0f64..2.0, pad in 0usize..5,
        ta in 0u8..2, tb in 0u8..2, seed in 0u64..500,
    ) {
        let (ta, tb) = (
            if ta == 0 { Trans::No } else { Trans::Yes },
            if tb == 0 { Trans::No } else { Trans::Yes },
        );
        let alpha = if alpha_sel == 0 { 0.0 } else { 0.5 * alpha_sel as f64 };
        let (am, an) = match ta { Trans::No => (m, k), Trans::Yes => (k, m) };
        let (bm, bn) = match tb { Trans::No => (k, n), Trans::Yes => (n, k) };
        let a = rand_mat(am.max(1), an.max(1), seed);
        let b = rand_mat(bm.max(1), bn.max(1), seed + 1);
        let ldc = m + pad;
        let sentinel = 3.25f64;
        let mut c1 = vec![sentinel; ldc * n];
        let mut c2 = c1.clone();
        for j in 0..n {
            for i in 0..m {
                c1[i + j * ldc] = (i + 2 * j) as f64 * 0.1 - 1.0;
                c2[i + j * ldc] = c1[i + j * ldc];
            }
        }
        gemm(ta, tb, m, n, k, alpha,
             a.as_slice(), a.rows(), b.as_slice(), b.rows(), beta, &mut c1, ldc);
        gemm_unpacked(ta, tb, m, n, k, alpha,
             a.as_slice(), a.rows(), b.as_slice(), b.rows(), beta, &mut c2, ldc);
        for j in 0..n {
            for i in 0..m {
                prop_assert!((c1[i + j * ldc] - c2[i + j * ldc]).abs() < 1e-11, "({i},{j})");
            }
            for i in m..ldc {
                prop_assert!(c1[i + j * ldc] == sentinel, "padding clobbered at ({i},{j})");
            }
        }
    }

    /// gemm_par panel math: both parallel splits (jc column panels and
    /// ic row blocks) agree with the sequential kernel for any
    /// thread-count hint — short final chunks, transposed operands,
    /// beta applied exactly once.
    #[test]
    fn gemm_par_with_matches_serial(
        m in 1usize..80, n in 1usize..80, k in 1usize..40,
        threads in 1usize..9, beta in -2.0f64..2.0,
        ta in 0u8..2, tb in 0u8..2, seed in 0u64..500,
    ) {
        let (ta, tb) = (
            if ta == 0 { Trans::No } else { Trans::Yes },
            if tb == 0 { Trans::No } else { Trans::Yes },
        );
        let (am, an) = match ta { Trans::No => (m, k), Trans::Yes => (k, m) };
        let (bm, bn) = match tb { Trans::No => (k, n), Trans::Yes => (n, k) };
        let a = rand_mat(am, an, seed);
        let b = rand_mat(bm, bn, seed + 1);
        let c0 = rand_mat(m, n, seed + 2);
        let mut c1 = c0.clone();
        let mut c2 = c0.clone();
        gemm(ta, tb, m, n, k, 1.5,
             a.as_slice(), a.rows(), b.as_slice(), b.rows(),
             beta, c1.as_mut_slice(), m);
        gemm_par_with(threads, ta, tb, m, n, k, 1.5,
             a.as_slice(), a.rows(), b.as_slice(), b.rows(),
             beta, c2.as_mut_slice(), m);
        prop_assert!(c1.approx_eq(&c2, 1e-11));
    }

    /// The blocked syr2k (serial and parallel) agrees with the dense
    /// oracle across the SYR2K panel boundary, with beta scaling and the
    /// upper triangle untouched.
    #[test]
    fn syr2k_blocked_matches_oracle(
        n in 1usize..100, k in 1usize..10, beta in -2.0f64..2.0, seed in 0u64..500,
    ) {
        let x = rand_mat(n, k, seed);
        let y = rand_mat(n, k, seed + 1);
        let c0 = rand_mat(n, n, seed + 2);
        let mut c1 = c0.clone();
        let mut c2 = c0.clone();
        syr2k_lower(n, k, 0.75, x.as_slice(), n, y.as_slice(), n, beta, c1.as_mut_slice(), n);
        syr2k_lower_par(n, k, 0.75, x.as_slice(), n, y.as_slice(), n, beta, c2.as_mut_slice(), n);
        let xyt = x.multiply(&y.transpose()).unwrap();
        for j in 0..n {
            for i in j..n {
                let w = 0.75 * (xyt[(i, j)] + xyt[(j, i)]) + beta * c0[(i, j)];
                prop_assert!((c1[(i, j)] - w).abs() < 1e-10, "serial ({i},{j})");
                prop_assert!((c2[(i, j)] - w).abs() < 1e-10, "parallel ({i},{j})");
            }
            for i in 0..j {
                prop_assert!(c1[(i, j)] == c0[(i, j)], "upper touched ({i},{j})");
                prop_assert!(c2[(i, j)] == c0[(i, j)], "upper touched ({i},{j})");
            }
        }
    }

    /// Jacobi oracle satisfies its own invariants on random input.
    #[test]
    fn jacobi_invariants(n in 1usize..20, seed in 0u64..300) {
        let a = gen::random_symmetric(n, seed);
        let r = tseig_kernels::reference::jacobi_eigen(&a, true).unwrap();
        prop_assert!(r.eigenvalues.windows(2).all(|w| w[0] <= w[1]));
        let z = r.eigenvectors.unwrap();
        prop_assert!(norms::eigen_residual(&a, &r.eigenvalues, &z) < 500.0);
        prop_assert!(norms::orthogonality(&z) < 500.0);
    }
}
