//! The pack buffers must stop tracking their historical maximum: one
//! huge GEMM used to pin megabytes of thread-local pack storage for the
//! lifetime of the thread, no matter how small every later call was.
//! The bounded-retention policy releases the excess at the next nest —
//! while steady same-size streams (the planned hot path) never shrink.

use tseig_kernels::blas3::engine::{pack_footprint_bytes_f64, pack_req};
use tseig_kernels::blas3::{gemm, Trans};
use tseig_matrix::Matrix;

fn run_gemm(m: usize, n: usize, k: usize) {
    let a = Matrix::zeros(m, k);
    let b = Matrix::zeros(k, n);
    let mut c = Matrix::zeros(m, n);
    gemm(
        Trans::No,
        Trans::No,
        m,
        n,
        k,
        1.0,
        a.as_slice(),
        m,
        b.as_slice(),
        k,
        0.0,
        c.as_mut_slice(),
        m,
    );
}

#[test]
fn pack_footprint_shrinks_after_a_large_nest() {
    // A large nest forces the pack buffers well past the shrink floor.
    run_gemm(600, 600, 600);
    let big = pack_footprint_bytes_f64();
    let big_req = pack_req::<f64>(600, 600, 600).total_bytes();
    assert!(big > 0, "pack buffers unused by a 600^3 gemm?");
    assert!(
        big <= big_req,
        "big nest retained {big} bytes, advertised {big_req}"
    );

    // A stream of small nests on the same thread: the first call notices
    // the 4x excess and releases it; the rest reuse the small buffer.
    // Policy bound per strip: capacity either never crossed the 1 MiB
    // shrink floor, or was cut back to the strip's need — so the total
    // is capped by twice the floor, independent of the historical max.
    for _ in 0..3 {
        run_gemm(32, 32, 32);
    }
    let small = pack_footprint_bytes_f64();
    let small_req = pack_req::<f64>(32, 32, 32).total_bytes();
    let policy_bound = 2 * (1 << 20).max(4 * small_req);
    assert!(
        small < big,
        "small nests released nothing ({small} bytes, was {big})"
    );
    assert!(
        small <= policy_bound,
        "after small nests the buffers still hold {small} bytes \
         (policy bound {policy_bound}, requirement {small_req}, \
          historical max {big})"
    );

    // Steady same-size streams stay put: no grow/shrink thrash.
    run_gemm(32, 32, 32);
    assert_eq!(pack_footprint_bytes_f64(), small);
}
