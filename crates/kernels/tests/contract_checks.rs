//! Entry-point contract tests: every public BLAS-3 kernel must reject
//! undersized leading dimensions, short slices, and aliased in/out
//! operands in debug builds, and (under `paranoid`) NaN/Inf input poison
//! — while never firing on valid calls.
//!
//! The `#[should_panic]` tests are debug-only: contracts compile to
//! nothing in release builds, which the release benchmark relies on.

use proptest::prelude::*;
use tseig_kernels::blas3::{
    gemm, gemm_par, gemm_par_with, gemm_unpacked, symm_lower_left, symm_lower_left_par,
    syr2k_lower, syr2k_lower_par, syrk_lower, trmm_upper_left, Trans,
};

fn filled(len: usize, seed: u64) -> Vec<f64> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Carve an aliased (read, write) view pair from one buffer, the way a
/// caller slicing from leaked or raw-parts storage could. The kernels'
/// alias contract must abort before a single element is dereferenced, so
/// the overlap is never actually exercised.
fn aliased_pair(buf: &mut [f64]) -> (&[f64], &mut [f64]) {
    let ptr = buf.as_mut_ptr();
    let len = buf.len();
    // SAFETY: both views cover one live allocation; the contract under
    // test panics on the pointer ranges before any element access.
    let r = unsafe { std::slice::from_raw_parts(ptr, len) }; // tidy: allow(unsafe-allowlist) -- alias-contract test

    // SAFETY: as above — aborted by the contract before any access.
    let w = unsafe { std::slice::from_raw_parts_mut(ptr, len) }; // tidy: allow(unsafe-allowlist) -- alias-contract test
    (r, w)
}

// ---------------------------------------------------------------------
// Bad leading dimension / short slice, one test per public entry point.
// ---------------------------------------------------------------------

#[test]
#[cfg_attr(not(debug_assertions), ignore = "contracts compile out in release")]
#[should_panic(expected = "leading dimension")]
fn gemm_rejects_small_lda() {
    let a = filled(8, 1);
    let b = filled(8, 2);
    let mut c = vec![0.0; 16];
    // a is the No-trans 4 x 2 operand: lda must be >= 4.
    gemm(
        Trans::No,
        Trans::No,
        4,
        4,
        2,
        1.0,
        &a,
        3,
        &b,
        2,
        0.0,
        &mut c,
        4,
    );
}

#[test]
#[cfg_attr(not(debug_assertions), ignore = "contracts compile out in release")]
#[should_panic(expected = "slice too short")]
fn gemm_par_rejects_short_b() {
    let a = filled(8, 1);
    let b = filled(5, 2); // needs (4-1)*2 + 2 = 8
    let mut c = vec![0.0; 16];
    gemm_par(
        Trans::No,
        Trans::No,
        4,
        4,
        2,
        1.0,
        &a,
        4,
        &b,
        2,
        0.0,
        &mut c,
        4,
    );
}

#[test]
#[cfg_attr(not(debug_assertions), ignore = "contracts compile out in release")]
#[should_panic(expected = "leading dimension")]
fn gemm_par_with_rejects_small_ldc() {
    let a = filled(8, 1);
    let b = filled(8, 2);
    let mut c = vec![0.0; 16];
    gemm_par_with(
        2,
        Trans::No,
        Trans::No,
        4,
        4,
        2,
        1.0,
        &a,
        4,
        &b,
        2,
        0.0,
        &mut c,
        3,
    );
}

#[test]
#[cfg_attr(not(debug_assertions), ignore = "contracts compile out in release")]
#[should_panic(expected = "leading dimension")]
fn gemm_unpacked_rejects_small_lda() {
    let a = filled(8, 1);
    let b = filled(8, 2);
    let mut c = vec![0.0; 16];
    gemm_unpacked(
        Trans::No,
        Trans::No,
        4,
        4,
        2,
        1.0,
        &a,
        3,
        &b,
        2,
        0.0,
        &mut c,
        4,
    );
}

#[test]
#[cfg_attr(not(debug_assertions), ignore = "contracts compile out in release")]
#[should_panic(expected = "slice too short")]
fn syrk_rejects_short_a() {
    let a = filled(7, 1); // No-trans 4 x 2 operand needs 1*4 + 4 = 8
    let mut c = vec![0.0; 16];
    syrk_lower(Trans::No, 4, 2, 1.0, &a, 4, 0.0, &mut c, 4);
}

#[test]
#[cfg_attr(not(debug_assertions), ignore = "contracts compile out in release")]
#[should_panic(expected = "leading dimension")]
fn syr2k_rejects_small_ldb() {
    let a = filled(8, 1);
    let b = filled(8, 2);
    let mut c = vec![0.0; 16];
    syr2k_lower(4, 2, 1.0, &a, 4, &b, 3, 0.0, &mut c, 4);
}

#[test]
#[cfg_attr(not(debug_assertions), ignore = "contracts compile out in release")]
#[should_panic(expected = "slice too short")]
fn syr2k_par_rejects_short_c() {
    let a = filled(8, 1);
    let b = filled(8, 2);
    let mut c = vec![0.0; 15]; // needs 3*4 + 4 = 16
    syr2k_lower_par(4, 2, 1.0, &a, 4, &b, 4, 0.0, &mut c, 4);
}

#[test]
#[cfg_attr(not(debug_assertions), ignore = "contracts compile out in release")]
#[should_panic(expected = "leading dimension")]
fn symm_rejects_small_lda() {
    let a = filled(16, 1);
    let b = filled(8, 2);
    let mut c = vec![0.0; 8];
    symm_lower_left(4, 2, 1.0, &a, 3, &b, 4, 0.0, &mut c, 4);
}

#[test]
#[cfg_attr(not(debug_assertions), ignore = "contracts compile out in release")]
#[should_panic(expected = "slice too short")]
fn symm_par_rejects_short_b() {
    let a = filled(16, 1);
    let b = filled(7, 2); // 4 x 2 with ldb 4 needs 8
    let mut c = vec![0.0; 8];
    symm_lower_left_par(4, 2, 1.0, &a, 4, &b, 4, 0.0, &mut c, 4);
}

#[test]
#[cfg_attr(not(debug_assertions), ignore = "contracts compile out in release")]
#[should_panic(expected = "leading dimension")]
fn trmm_rejects_small_ldt() {
    let t = filled(16, 1);
    let mut b = vec![0.0; 16];
    trmm_upper_left(Trans::No, 4, 4, 1.0, &t, 3, &mut b, 4);
}

// ---------------------------------------------------------------------
// Aliased in/out operands.
// ---------------------------------------------------------------------

#[test]
#[cfg_attr(not(debug_assertions), ignore = "contracts compile out in release")]
#[should_panic(expected = "overlaps output")]
fn gemm_rejects_aliased_a_and_c() {
    let mut buf = filled(16, 1);
    let b = filled(16, 2);
    let (a, c) = aliased_pair(&mut buf);
    gemm(Trans::No, Trans::No, 4, 4, 4, 1.0, a, 4, &b, 4, 0.0, c, 4);
}

#[test]
#[cfg_attr(not(debug_assertions), ignore = "contracts compile out in release")]
#[should_panic(expected = "overlaps output")]
fn syr2k_rejects_aliased_b_and_c() {
    let a = filled(8, 1);
    let mut buf = filled(16, 2);
    let (b, c) = aliased_pair(&mut buf);
    syr2k_lower(4, 2, 1.0, &a, 4, b, 4, 0.0, c, 4);
}

#[test]
#[cfg_attr(not(debug_assertions), ignore = "contracts compile out in release")]
#[should_panic(expected = "overlaps output")]
fn symm_rejects_aliased_b_and_c() {
    let a = filled(16, 1);
    let mut buf = filled(16, 2);
    let (b, c) = aliased_pair(&mut buf);
    symm_lower_left(4, 2, 1.0, &a, 4, b, 4, 0.0, c, 4);
}

#[test]
#[cfg_attr(not(debug_assertions), ignore = "contracts compile out in release")]
#[should_panic(expected = "overlaps output")]
fn trmm_rejects_aliased_t_and_b() {
    let mut buf = filled(16, 1);
    let (t, b) = aliased_pair(&mut buf);
    trmm_upper_left(Trans::No, 4, 4, 1.0, t, 4, b, 4);
}

// ---------------------------------------------------------------------
// `paranoid`: NaN/Inf input poison detection, scoped to the read set.
// ---------------------------------------------------------------------

#[cfg(feature = "paranoid")]
mod paranoid {
    use super::*;

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "contracts compile out in release")]
    #[should_panic(expected = "non-finite input poison")]
    fn gemm_catches_nan_in_a() {
        let mut a = filled(8, 1);
        a[5] = f64::NAN;
        let b = filled(8, 2);
        let mut c = vec![0.0; 16];
        gemm(
            Trans::No,
            Trans::No,
            4,
            4,
            2,
            1.0,
            &a,
            4,
            &b,
            2,
            0.0,
            &mut c,
            4,
        );
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "contracts compile out in release")]
    #[should_panic(expected = "non-finite input poison")]
    fn syrk_catches_inf_in_a() {
        let mut a = filled(8, 1);
        a[0] = f64::INFINITY;
        let mut c = vec![0.0; 16];
        syrk_lower(Trans::No, 4, 2, 1.0, &a, 4, 0.0, &mut c, 4);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "contracts compile out in release")]
    #[should_panic(expected = "non-finite input poison")]
    fn symm_catches_nan_in_lower_triangle() {
        let mut a = filled(16, 1);
        a[2] = f64::NAN; // (2, 0): strictly lower, inside the read set
        let b = filled(8, 2);
        let mut c = vec![0.0; 8];
        symm_lower_left(4, 2, 1.0, &a, 4, &b, 4, 0.0, &mut c, 4);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "contracts compile out in release")]
    fn symm_ignores_nan_in_mirrored_triangle() {
        // The strictly-upper triangle of a `symm_lower_left` operand is
        // outside the read contract; poison there must not fire.
        let mut a = filled(16, 1);
        a[4] = f64::NAN; // (0, 1): strictly upper
        let b = filled(8, 2);
        let mut c = vec![0.0; 8];
        symm_lower_left(4, 2, 1.0, &a, 4, &b, 4, 0.0, &mut c, 4);
        assert!(c.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "contracts compile out in release")]
    #[should_panic(expected = "non-finite input poison")]
    fn trmm_catches_nan_in_upper_triangle() {
        let mut t = filled(16, 1);
        t[4] = f64::NAN; // (0, 1): inside the upper read set
        let mut b = vec![0.0; 16];
        trmm_upper_left(Trans::No, 4, 4, 1.0, &t, 4, &mut b, 4);
    }
}

// ---------------------------------------------------------------------
// Contracts never fire on valid calls.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random well-formed calls — arbitrary shapes, slack in every
    /// leading dimension — must pass every contract (a panic fails the
    /// test) and produce finite output.
    #[test]
    fn contracts_accept_valid_calls(
        m in 1usize..20, n in 1usize..20, k in 1usize..20,
        sa in 0usize..3, sb in 0usize..3, sc in 0usize..3,
        seed in 0u64..500,
    ) {
        // gemm: C (m x n) += A (m x k) B (k x n), padded strides.
        let (lda, ldb, ldc) = (m + sa, k + sb, m + sc);
        let a = filled(lda * k, seed);
        let b = filled(ldb * n, seed + 1);
        let mut c = vec![0.0; ldc * n];
        gemm(Trans::No, Trans::No, m, n, k, 1.0, &a, lda, &b, ldb, 0.5, &mut c, ldc);
        prop_assert!(c.iter().all(|v| v.is_finite()));

        // syrk/syr2k: C (n x n, lower) from n x k operands.
        let ldx = n + sa;
        let x = filled(ldx * k, seed + 2);
        let y = filled(ldx * k, seed + 3);
        let lds = n + sc;
        let mut s = vec![0.0; lds * n];
        syrk_lower(Trans::No, n, k, 1.0, &x, ldx, 0.0, &mut s, lds);
        syr2k_lower(n, k, 1.0, &x, ldx, &y, ldx, 1.0, &mut s, lds);
        prop_assert!(s.iter().all(|v| v.is_finite()));

        // symm: C (m x k) = A (m x m, lower) B (m x k).
        let ldsy = m + sb;
        let sym = filled(ldsy * m, seed + 4);
        let rhs = filled((m + sa) * k, seed + 5);
        let mut out = vec![0.0; (m + sc) * k];
        symm_lower_left(m, k, 1.0, &sym, ldsy, &rhs, m + sa, 0.0, &mut out, m + sc);
        prop_assert!(out.iter().all(|v| v.is_finite()));

        // trmm: B (k x n) = T (k x k, upper) B.
        let ldt = k + sa;
        let t = filled(ldt * k, seed + 6);
        let mut rhs2 = filled((k + sb) * n, seed + 7);
        trmm_upper_left(Trans::Yes, k, n, 1.0, &t, ldt, &mut rhs2, k + sb);
        prop_assert!(rhs2.iter().all(|v| v.is_finite()));
    }
}
