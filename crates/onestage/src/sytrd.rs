//! Blocked one-stage tridiagonal reduction (LAPACK `dsytrd`/`dlatrd`).
//!
//! For each panel of `nb` columns, `latrd` builds the Householder
//! reflectors *and* the update matrix `W = tau (A v - ...)` — each column
//! of which costs one `symv` with the whole trailing submatrix — then the
//! trailing matrix receives a single blocked rank-`2nb` update
//! (`syr2k`). Exactly half the flops (the `symv` half) are memory-bound;
//! that is the `4/3 n^3 / beta` term of the paper's Eq. (4).
//!
//! Only the lower triangle is referenced or updated. Reflector `j` acts
//! on rows `j+1..n`; its tail is stored in the factored matrix below the
//! first sub-diagonal, LAPACK-style.

use tseig_kernels::blas1::{axpy, dot};
use tseig_kernels::blas2::{gemv, symv_lower_par, syr2_lower};
use tseig_kernels::blas3::{syr2k_lower_par, Trans};
use tseig_kernels::householder::larfg;
use tseig_matrix::Matrix;

/// Output of the one-stage reduction: `A = Q1 T Q1^T` with `T = (d, e)`
/// and `Q1` stored as Householder reflectors in the factored matrix.
pub struct TridiagFactor {
    /// Factored matrix: reflector tails below the first sub-diagonal of
    /// the lower triangle (upper triangle untouched).
    pub a: Matrix,
    /// Diagonal of `T`.
    pub d: Vec<f64>,
    /// Sub-diagonal of `T`.
    pub e: Vec<f64>,
    /// Reflector scalars, `tau[j]` for the reflector annihilating
    /// column `j` (length `n - 1`; trailing entries may be zero).
    pub tau: Vec<f64>,
    /// Panel width used (needed again by the back-transformation).
    pub nb: usize,
}

impl TridiagFactor {
    /// The tridiagonal matrix this factorization produced.
    pub fn tridiagonal(&self) -> tseig_matrix::SymTridiagonal {
        tseig_matrix::SymTridiagonal::new(self.d.clone(), self.e.clone())
    }
}

/// Reduce the symmetric matrix `a` (lower triangle) to tridiagonal form
/// with panel width `nb`. Consumes `a`; the factored matrix is returned
/// inside [`TridiagFactor`].
pub fn sytrd(mut a: Matrix, nb: usize) -> TridiagFactor {
    assert_eq!(a.rows(), a.cols());
    let n = a.rows();
    let nb = nb.max(1);
    let mut d = vec![0.0f64; n];
    let mut e = vec![0.0f64; n.saturating_sub(1)];
    let mut tau = vec![0.0f64; n.saturating_sub(1)];
    if n == 0 {
        return TridiagFactor { a, d, e, tau, nb };
    }

    // Crossover below which the unblocked code takes over (LAPACK's NX).
    let nx = (2 * nb).max(32);
    let mut i = 0usize;
    while n - i > nx && n - i > nb {
        latrd(&mut a, i, nb, &mut e, &mut tau);
        // Trailing update: A2 -= V W^T + W V^T with V = panel rows below
        // the block and W the matching rows of the latrd output (stored
        // in `e`/`tau` pass W back? -> latrd returns it).
        // latrd stores W alongside; see below — it performs the update
        // itself for simplicity of ownership.
        i += nb;
    }
    // Unblocked finish on the trailing block.
    sytd2(&mut a, i, &mut e, &mut tau);

    for j in 0..n {
        d[j] = a[(j, j)];
    }
    TridiagFactor { a, d, e, tau, nb }
}

/// Panel factorization + trailing update for columns `i..i+nb`.
///
/// Works on the trailing submatrix `A[i.., i..]` of order `m = n - i`.
/// On return the panel columns hold their reflectors (unit entries
/// restored to `e[j]`), and the trailing block `A[i+nb.., i+nb..]` has
/// received the rank-`2nb` update.
fn latrd(a: &mut Matrix, i: usize, nb: usize, e: &mut [f64], tau: &mut [f64]) {
    let n = a.rows();
    let m = n - i;
    let lda = a.ld();
    let mut w = Matrix::zeros(m, nb);

    for jj in 0..nb {
        let j = i + jj; // global column
        let rows = m - jj; // rows jj..m of the submatrix == j..n global
                           // Update column j with the previous reflectors of this panel:
                           // A(j:n, j) -= V_prev * W(jj, :)^T + W_prev * A(j, i..j)^T.
        if jj > 0 {
            let wrow: Vec<f64> = (0..jj).map(|k| w[(jj, k)]).collect();
            let arow: Vec<f64> = (0..jj).map(|k| a[(j, i + k)]).collect();
            // V_prev = A(j:n, i..j), W_prev = W(jj:m, 0..jj).
            let (acol_start, vprev_start) = (j + j * lda, j + i * lda);
            {
                // Split borrows: copy the needed V rows? They live in the
                // same matrix as the destination column but in different
                // columns, so use raw split via cols.
                let (head, rest) = a.as_mut_slice().split_at_mut(j * lda);
                let dst = &mut rest[j..j + rows];
                let vprev = &head[vprev_start..];
                gemv(Trans::No, rows, jj, -1.0, vprev, lda, &wrow, 1.0, dst);
            }
            let _ = acol_start;
            {
                let wprev = &w.as_slice()[jj..];
                let dst = &mut a.as_mut_slice()[j + j * lda..j + j * lda + rows];
                gemv(Trans::No, rows, jj, -1.0, wprev, m, &arow, 1.0, dst);
            }
        }
        if jj + 1 >= m {
            continue; // last column of the matrix: nothing below
        }
        // Generate the reflector from A(j+1:n, j).
        let (beta, tj) = {
            let col = &mut a.as_mut_slice()[j * lda..j * lda + n];
            let (head, tail) = col.split_at_mut(j + 2);
            larfg(head[j + 1], &mut tail[..n - j - 2])
        };
        e[j] = beta;
        tau[j] = tj;
        a[(j + 1, j)] = 1.0; // unit entry used by symv/syr2k; restored later

        // w_jj = tau * (A2 v - V_prev (W_prev^T v) - W_prev (V_prev^T v))
        let rows_b = m - jj - 1; // rows j+1..n
        let v_start = (j + 1) + j * lda;
        // symv with the trailing symmetric block A(j+1:n, j+1:n).
        {
            let (acol, asub) = {
                let s = a.as_slice();
                // v = A(j+1:n, j); A2 starts at (j+1, j+1).
                (&s[v_start..v_start + rows_b], &s[(j + 1) + (j + 1) * lda..])
            };
            let wcol = &mut w.as_mut_slice()[(jj + 1) + jj * m..(jj + 1) + jj * m + rows_b];
            symv_lower_par(rows_b, 1.0, asub, lda, acol, 0.0, wcol);
        }
        if jj > 0 {
            // tmp1 = W_prev^T v ; w -= V_prev tmp1
            let v: Vec<f64> = a.as_slice()[v_start..v_start + rows_b].to_vec();
            let mut tmp = vec![0.0f64; jj];
            {
                let wprev = &w.as_slice()[jj + 1..];
                gemv(Trans::Yes, rows_b, jj, 1.0, wprev, m, &v, 0.0, &mut tmp);
            }
            {
                let (head, rest) = split_w(&mut w, jj, m);
                let vprev = &a.as_slice()[(j + 1) + i * lda..];
                gemv(
                    Trans::No,
                    rows_b,
                    jj,
                    -1.0,
                    vprev,
                    lda,
                    &tmp,
                    1.0,
                    &mut rest[..rows_b],
                );
                let _ = head;
            }
            // tmp2 = V_prev^T v ; w -= W_prev tmp2
            {
                let vprev = &a.as_slice()[(j + 1) + i * lda..];
                gemv(Trans::Yes, rows_b, jj, 1.0, vprev, lda, &v, 0.0, &mut tmp);
            }
            {
                let (head, rest) = split_w(&mut w, jj, m);
                gemv(
                    Trans::No,
                    rows_b,
                    jj,
                    -1.0,
                    &head[jj + 1..],
                    m,
                    &tmp,
                    1.0,
                    &mut rest[..rows_b],
                );
            }
        }
        // Scale by tau and make w orthogonal-ish: w += alpha v with
        // alpha = -tau/2 * (w^T v).
        {
            let v: Vec<f64> = a.as_slice()[v_start..v_start + rows_b].to_vec();
            let wcol = &mut w.as_mut_slice()[(jj + 1) + jj * m..(jj + 1) + jj * m + rows_b];
            for x in wcol.iter_mut() {
                *x *= tj;
            }
            let alpha = -0.5 * tj * dot(wcol, &v);
            axpy(alpha, &v, wcol);
        }
    }

    // Trailing rank-2nb update: A(i+nb.., i+nb..) -= V W^T + W V^T.
    let r0 = i + nb;
    if r0 < n {
        let rows = n - r0;
        let (vslice_start, wrow0) = (r0 + i * lda, nb);
        let a_ptr = a.as_mut_slice();
        // V = A(r0.., i..i+nb) and destination A(r0.., r0..) overlap in
        // the same buffer but in disjoint column ranges; split at the
        // start of column r0.
        let (head, rest) = a_ptr.split_at_mut(r0 * lda);
        let v = &head[vslice_start..];
        let wpart = &w.as_slice()[wrow0..];
        syr2k_lower_par(rows, nb, -1.0, v, lda, wpart, m, 1.0, &mut rest[r0..], lda);
    }

    // Restore the unit sub-diagonal entries.
    for jj in 0..nb {
        let j = i + jj;
        if j + 1 < n {
            a[(j + 1, j)] = e[j];
        }
    }
}

/// Mutable split of `w`'s buffer at column `jj`: returns
/// `(columns 0..jj as one slice, column jj starting at row jj+1)`.
fn split_w(w: &mut Matrix, jj: usize, m: usize) -> (&[f64], &mut [f64]) {
    let (head, rest) = w.as_mut_slice().split_at_mut(jj * m);
    (&*head, &mut rest[jj + 1..])
}

/// Unblocked reduction of the trailing block starting at `i0`
/// (LAPACK `dsytd2`, lower).
fn sytd2(a: &mut Matrix, i0: usize, e: &mut [f64], tau: &mut [f64]) {
    let n = a.rows();
    let lda = a.ld();
    let mut x = vec![0.0f64; n];
    for j in i0..n.saturating_sub(1) {
        let rows = n - j - 1;
        let (beta, tj) = {
            let col = &mut a.as_mut_slice()[j * lda..j * lda + n];
            let (head, tail) = col.split_at_mut(j + 2);
            larfg(head[j + 1], &mut tail[..n - j - 2])
        };
        e[j] = beta;
        tau[j] = tj;
        if tj != 0.0 {
            a[(j + 1, j)] = 1.0;
            let v: Vec<f64> = a.as_slice()[(j + 1) + j * lda..(j + 1) + j * lda + rows].to_vec();
            // x = tau * A2 v ; x += -tau/2 (x^T v) v ; A2 -= v x^T + x v^T
            {
                let asub = &a.as_slice()[(j + 1) + (j + 1) * lda..];
                symv_lower_par(rows, tj, asub, lda, &v, 0.0, &mut x[..rows]);
            }
            let alpha = -0.5 * tj * dot(&x[..rows], &v);
            axpy(alpha, &v, &mut x[..rows]);
            {
                let asub = &mut a.as_mut_slice()[(j + 1) + (j + 1) * lda..];
                syr2_lower(rows, -1.0, &v, &x[..rows], asub, lda);
            }
            a[(j + 1, j)] = beta;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tseig_matrix::{gen, norms};

    /// Reconstruct T as a dense matrix from (d, e).
    fn t_dense(f: &TridiagFactor) -> Matrix {
        f.tridiagonal().to_dense()
    }

    /// Explicitly form Q1 from the factored reflectors.
    fn form_q(f: &TridiagFactor) -> Matrix {
        let n = f.a.rows();
        let mut q = Matrix::identity(n);
        crate::ormtr::ormtr_left(f, &mut q);
        q
    }

    fn check_reduction(n: usize, nb: usize, seed: u64) {
        let a0 = gen::random_symmetric(n, seed);
        let f = sytrd(a0.clone(), nb);
        // Q^T A Q == T  <=>  A Q == Q T.
        let q = form_q(&f);
        assert!(
            norms::orthogonality(&q) < 100.0,
            "Q not orthogonal (n={n}, nb={nb})"
        );
        let aq = a0.multiply(&q).unwrap();
        let qt = q.multiply(&t_dense(&f)).unwrap();
        let scale = norms::norm1(&a0) * n as f64 * norms::EPS;
        let mut diff = 0.0f64;
        for (x, y) in aq.as_slice().iter().zip(qt.as_slice()) {
            diff = diff.max((x - y).abs());
        }
        assert!(
            diff / scale < 100.0,
            "A Q != Q T (n={n}, nb={nb}): {}",
            diff / scale
        );
    }

    #[test]
    fn unblocked_small() {
        check_reduction(10, 64, 1); // nb > n forces the unblocked path
    }

    #[test]
    fn blocked_medium() {
        check_reduction(80, 8, 2);
        check_reduction(100, 16, 3);
    }

    #[test]
    fn blocked_awkward_sizes() {
        check_reduction(67, 7, 4);
        check_reduction(33, 5, 5);
    }

    #[test]
    fn eigenvalues_preserved() {
        // The tridiagonal form must have the same spectrum as A.
        let n = 50;
        let lambda = gen::linspace(-2.0, 7.0, n);
        let a = gen::symmetric_with_spectrum(&lambda, 17);
        let f = sytrd(a, 12);
        let t = f.tridiagonal();
        let got = tseig_tridiag::sturm::bisect_eigenvalues(&t, 0, n).unwrap();
        assert!(norms::eigenvalue_distance(&got, &lambda) < 1e-11);
    }

    #[test]
    fn degenerate_sizes() {
        let f = sytrd(Matrix::zeros(0, 0), 4);
        assert_eq!(f.d.len(), 0);
        let f = sytrd(Matrix::identity(1), 4);
        assert_eq!(f.d, vec![1.0]);
        let f = sytrd(gen::random_symmetric(2, 9), 4);
        assert_eq!(f.e.len(), 1);
    }
}
