//! One-stage bidiagonal reduction (`dgebd2`-class).
//!
//! Reproduces the *second row of the paper's Table 2* (BRD = 4 `gemv`
//! per element) and the §4.1 complexity comparison against the authors'
//! earlier SVD work: the bidiagonalization of a general matrix costs
//! `8/3 n^3` — double the symmetric reduction — because symmetry cannot
//! be exploited, and every flop is `gemv`-class memory-bound in the
//! one-stage form.

use tseig_kernels::contract;
use tseig_kernels::householder::{larf_left, larf_right, larfg};
use tseig_matrix::Matrix;

/// Reduce an `m x n` matrix (`m >= n`) to upper bidiagonal form in
/// place: `A = Q B P^T`. Returns `(tauq, taup, d, e)` — the left/right
/// reflector scalars and the bidiagonal (`d` diagonal, `e`
/// super-diagonal).
pub fn gebrd(a: &mut Matrix) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
    let (m, n) = (a.rows(), a.cols());
    assert!(m >= n, "gebrd expects m >= n (tall)");
    let lda = a.ld();
    if contract::enabled() {
        contract::require_mat("gebrd", "a", a.as_slice(), m, n, lda);
        contract::require_finite_mat("gebrd", "a", a.as_slice(), m, n, lda);
    }
    let mut tauq = vec![0.0f64; n];
    let mut taup = vec![0.0f64; n.saturating_sub(1)];
    let mut d = vec![0.0f64; n];
    let mut e = vec![0.0f64; n.saturating_sub(1)];
    let mut u = vec![0.0f64; m.max(n)];
    let mut work = vec![0.0f64; m.max(n)];

    for j in 0..n {
        // Left reflector: annihilate column j below the diagonal.
        let rows = m - j;
        let (beta, tq) = {
            let col = &mut a.as_mut_slice()[j * lda..j * lda + m];
            let (head, tail) = col.split_at_mut(j + 1);
            larfg(head[j], &mut tail[..m - j - 1])
        };
        tauq[j] = tq;
        d[j] = beta;
        if tq != 0.0 && j + 1 < n {
            u[0] = 1.0;
            for r in 1..rows {
                u[r] = a[(j + r, j)];
            }
            larf_left(
                &u[..rows],
                tq,
                rows,
                n - j - 1,
                &mut a.as_mut_slice()[j + (j + 1) * lda..],
                lda,
                &mut work,
            );
        }
        // Right reflector: annihilate row j beyond the super-diagonal.
        if j + 1 < n {
            let cols = n - j - 1;
            // Gather row j, columns j+1..n.
            for (c, uc) in u.iter_mut().take(cols).enumerate() {
                *uc = a[(j, j + 1 + c)];
            }
            let (head, tail) = u.split_at_mut(1);
            let (beta_r, tp) = larfg(head[0], &mut tail[..cols - 1]);
            taup[j] = tp;
            e[j] = beta_r;
            u[0] = 1.0;
            if tp != 0.0 && j + 1 < m {
                larf_right(
                    &u[..cols],
                    tp,
                    m - j - 1,
                    cols,
                    &mut a.as_mut_slice()[(j + 1) + (j + 1) * lda..],
                    lda,
                    &mut work,
                );
            }
            // Store the right reflector tail in row j.
            for c in 0..cols {
                a[(j, j + 1 + c)] = u[c];
            }
            a[(j, j + 1)] = beta_r;
        }
    }
    (tauq, taup, d, e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tseig_matrix::gen;

    fn rand_mat(m: usize, n: usize, seed: u64) -> Matrix {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn singular_values_preserved() {
        // The bidiagonal form has the same singular values as A, i.e.
        // B^T B has the same eigenvalues as A^T A.
        let (m, n) = (24, 18);
        let a0 = rand_mat(m, n, 31);
        let mut a = a0.clone();
        let (_, _, d, e) = gebrd(&mut a);
        // Build B^T B (tridiagonal-ish) densely from (d, e).
        let mut b = Matrix::zeros(n, n);
        for j in 0..n {
            b[(j, j)] = d[j];
            if j + 1 < n {
                b[(j, j + 1)] = e[j];
            }
        }
        let btb = b.transpose().multiply(&b).unwrap();
        let ata = a0.transpose().multiply(&a0).unwrap();
        let want = tseig_kernels::reference::jacobi_eigen(&ata, false)
            .unwrap()
            .eigenvalues;
        let got = tseig_kernels::reference::jacobi_eigen(&btb, false)
            .unwrap()
            .eigenvalues;
        assert!(
            tseig_matrix::norms::eigenvalue_distance(&got, &want) < 1e-9,
            "singular values changed"
        );
    }

    #[test]
    fn gemv_flop_profile() {
        // BRD is entirely Level-2 — Table 2's point — and costs
        // ~8/3 n^3 for square input (vs 4/3 for the symmetric TRD).
        let n = 96;
        let a = gen::random_symmetric(n, 32);
        let (_, counts) = tseig_kernels::flops::measure(|| {
            let mut m = a.clone();
            gebrd(&mut m)
        });
        let frac = counts.l2 as f64 / counts.total().max(1) as f64;
        assert!(frac > 0.95, "BRD L2 fraction {frac}");
        let coeff = counts.total() as f64 / (n as f64).powi(3);
        assert!((1.8..3.6).contains(&coeff), "BRD flops {coeff} n^3");
    }

    #[test]
    fn square_and_tall() {
        for (m, n) in [(10, 10), (20, 12), (3, 1)] {
            let a0 = rand_mat(m, n, (m * 100 + n) as u64);
            let mut a = a0.clone();
            let (tauq, taup, d, e) = gebrd(&mut a);
            assert_eq!(tauq.len(), n);
            assert_eq!(taup.len(), n.saturating_sub(1));
            assert_eq!(d.len(), n);
            assert_eq!(e.len(), n.saturating_sub(1));
        }
    }
}
