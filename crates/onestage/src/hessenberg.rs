//! One-stage Hessenberg reduction (`dgehd2`-class).
//!
//! Not part of the eigensolver pipeline — it exists to reproduce the
//! *third row of the paper's Table 2*: the Hessenberg reduction performs
//! ~10 `gemv`-class memory-bound operations per element (vs 4 `symv` for
//! the symmetric tridiagonal reduction), which is why nonsymmetric
//! reductions are even more bandwidth-starved. The `table2` bench
//! measures all three reductions' achieved rates side by side.

use tseig_kernels::householder::{larf_left, larf_right, larfg};
use tseig_matrix::Matrix;

/// Reduce a general square matrix to upper Hessenberg form in place:
/// `A = Q H Q^T`. Returns the reflector scalars; reflector `j`'s tail is
/// stored below the first sub-diagonal of column `j`.
pub fn gehrd(a: &mut Matrix) -> Vec<f64> {
    assert_eq!(a.rows(), a.cols());
    let n = a.rows();
    let lda = a.ld();
    let mut tau = vec![0.0f64; n.saturating_sub(1)];
    let mut u = vec![0.0f64; n];
    let mut work = vec![0.0f64; n];
    for j in 0..n.saturating_sub(2) {
        let rows = n - j - 1; // reflector acts on rows j+1..n
        let (beta, tj) = {
            let col = &mut a.as_mut_slice()[j * lda..j * lda + n];
            let (head, tail) = col.split_at_mut(j + 2);
            larfg(head[j + 1], &mut tail[..n - j - 2])
        };
        tau[j] = tj;
        if tj == 0.0 {
            continue;
        }
        u[0] = 1.0;
        for r in 1..rows {
            u[r] = a[(j + 1 + r, j)];
        }
        a[(j + 1, j)] = beta;
        // Left: A(j+1:n, j+1:n) <- H A(j+1:n, j+1:n)   (2 gemv-class passes)
        larf_left(
            &u[..rows],
            tj,
            rows,
            n - j - 1,
            &mut a.as_mut_slice()[(j + 1) + (j + 1) * lda..],
            lda,
            &mut work,
        );
        // Right: A(0:n, j+1:n) <- A(0:n, j+1:n) H      (2 more)
        larf_right(
            &u[..rows],
            tj,
            n,
            rows,
            &mut a.as_mut_slice()[(j + 1) * lda..],
            lda,
            &mut work,
        );
        // Keep the reflector tail stored below the sub-diagonal.
        for r in 1..rows {
            a[(j + 1 + r, j)] = u[r];
        }
    }
    tau
}

/// Materialize `Q` from a [`gehrd`]-factored matrix (tests).
pub fn orghr(a: &Matrix, tau: &[f64]) -> Matrix {
    let n = a.rows();
    let mut q = Matrix::identity(n);
    let mut u = vec![0.0f64; n];
    let mut work = vec![0.0f64; n];
    for j in (0..n.saturating_sub(2)).rev() {
        let rows = n - j - 1;
        u[0] = 1.0;
        for r in 1..rows {
            u[r] = a[(j + 1 + r, j)];
        }
        let ldq = q.ld();
        larf_left(
            &u[..rows],
            tau[j],
            rows,
            n,
            &mut q.as_mut_slice()[j + 1..],
            ldq,
            &mut work,
        );
    }
    q
}

/// Extract the Hessenberg matrix `H` from the factored form (tests).
pub fn hessenberg_of(a: &Matrix) -> Matrix {
    let n = a.rows();
    Matrix::from_fn(n, n, |i, j| if i <= j + 1 { a[(i, j)] } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tseig_matrix::{gen, norms};

    #[test]
    fn reduction_reconstructs() {
        let n = 30;
        // General (nonsymmetric) input.
        let a0 = {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(21);
            Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0))
        };
        let mut a = a0.clone();
        let tau = gehrd(&mut a);
        let q = orghr(&a, &tau);
        assert!(norms::orthogonality(&q) < 200.0);
        let h = hessenberg_of(&a);
        let qhqt = q.multiply(&h).unwrap().multiply(&q.transpose()).unwrap();
        assert!(qhqt.approx_eq(&a0, 1e-11 * n as f64), "Q H Q^T != A");
    }

    #[test]
    fn structure_is_hessenberg() {
        let n = 16;
        let mut a = gen::random_symmetric(n, 22);
        let _ = gehrd(&mut a);
        let h = hessenberg_of(&a);
        for j in 0..n {
            for i in j + 2..n {
                assert_eq!(h[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn gemv_flop_profile() {
        // The HRD must be almost entirely Level-2 flops — Table 2's point.
        let n = 96;
        let a = gen::random_symmetric(n, 23);
        let (_, counts) = tseig_kernels::flops::measure(|| {
            let mut m = a.clone();
            gehrd(&mut m)
        });
        let frac = counts.l2 as f64 / counts.total().max(1) as f64;
        assert!(frac > 0.95, "HRD L2 fraction {frac}");
        // ~10/3 n^3 flops leading order.
        let coeff = counts.total() as f64 / (n as f64).powi(3);
        assert!((2.0..5.0).contains(&coeff), "HRD flops {coeff} n^3");
    }

    #[test]
    fn tiny_sizes() {
        for n in [0usize, 1, 2] {
            let mut a = Matrix::identity(n);
            let tau = gehrd(&mut a);
            assert_eq!(tau.len(), n.saturating_sub(1));
        }
    }
}
