//! One-stage eigensolver driver (`dsyev`/`dsyevd`/`dsyevr` equivalents).
//!
//! Pipeline: `sytrd` reduction, tridiagonal solve (QR / D&C / bisection+
//! inverse iteration), `ormtr` back-transformation. Phase wall-times are
//! recorded so the harness can rebuild the paper's Figure 1a.

use crate::ormtr::ormtr_left;
use crate::sytrd::sytrd;
use std::time::Instant;
use tseig_matrix::{Error, Matrix, Result};
use tseig_tridiag::{EigenRange, Method, PhaseTimings};

/// Tuning knobs of the one-stage pipeline.
#[derive(Clone, Copy, Debug)]
pub struct OneStageOptions {
    /// Panel width of the blocked reduction and back-transformation.
    pub nb: usize,
    /// Tridiagonal eigensolver.
    pub method: Method,
}

impl Default for OneStageOptions {
    fn default() -> Self {
        OneStageOptions {
            nb: 32,
            method: Method::DivideAndConquer,
        }
    }
}

/// Result of a one-stage eigensolve.
pub struct OneStageResult {
    /// Ascending eigenvalues (the selected range).
    pub eigenvalues: Vec<f64>,
    /// Matching eigenvectors of the *original dense matrix*, if requested.
    pub eigenvectors: Option<Matrix>,
    /// Per-phase wall time (Figure 1a).
    pub timings: PhaseTimings,
}

/// Compute eigenvalues (and optionally eigenvectors) of the dense
/// symmetric matrix `a` (lower triangle referenced) with the classic
/// one-stage pipeline.
pub fn syev(
    a: &Matrix,
    range: EigenRange,
    want_vectors: bool,
    opts: &OneStageOptions,
) -> Result<OneStageResult> {
    assert_eq!(a.rows(), a.cols());
    let mut timings = PhaseTimings::default();

    let t0 = Instant::now();
    let fac = sytrd(a.clone(), opts.nb);
    timings.reduction = t0.elapsed();

    let t1 = Instant::now();
    let tri = fac.tridiagonal();
    let sol = tseig_tridiag::solve(&tri, opts.method, range, want_vectors)?;
    timings.tridiag_solve = t1.elapsed();

    let eigenvectors = if want_vectors {
        let t2 = Instant::now();
        let Some(mut z) = sol.eigenvectors else {
            return Err(Error::Runtime(
                "tridiagonal solver returned no eigenvectors although vectors \
                 were requested"
                    .into(),
            ));
        };
        ormtr_left(&fac, &mut z);
        timings.backtransform = t2.elapsed();
        Some(z)
    } else {
        None
    };

    Ok(OneStageResult {
        eigenvalues: sol.eigenvalues,
        eigenvectors,
        timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tseig_matrix::{gen, norms};

    #[test]
    fn full_solve_matches_prescribed_spectrum() {
        let n = 60;
        let lambda = gen::linspace(-1.0, 9.0, n);
        let a = gen::symmetric_with_spectrum(&lambda, 23);
        let r = syev(&a, EigenRange::All, true, &OneStageOptions::default()).unwrap();
        assert!(norms::eigenvalue_distance(&r.eigenvalues, &lambda) < 1e-11);
        let z = r.eigenvectors.unwrap();
        assert!(norms::eigen_residual(&a, &r.eigenvalues, &z) < 200.0);
        assert!(norms::orthogonality(&z) < 200.0);
        assert!(r.timings.total().as_nanos() > 0);
    }

    #[test]
    fn all_methods_give_same_spectrum() {
        let n = 45;
        let a = gen::random_symmetric(n, 31);
        let mut results = Vec::new();
        for m in [
            Method::Qr,
            Method::DivideAndConquer,
            Method::BisectionInverse,
        ] {
            let r = syev(
                &a,
                EigenRange::All,
                true,
                &OneStageOptions { nb: 8, method: m },
            )
            .unwrap();
            let z = r.eigenvectors.as_ref().unwrap();
            assert!(
                norms::eigen_residual(&a, &r.eigenvalues, z) < 300.0,
                "{m:?}"
            );
            assert!(norms::orthogonality(z) < 300.0, "{m:?}");
            results.push(r.eigenvalues);
        }
        assert!(norms::eigenvalue_distance(&results[0], &results[1]) < 1e-10);
        assert!(norms::eigenvalue_distance(&results[0], &results[2]) < 1e-10);
    }

    #[test]
    fn subset_matches_oracle() {
        let n = 40;
        let a = gen::random_symmetric(n, 37);
        let oracle = tseig_kernels::reference::jacobi_eigen(&a, false).unwrap();
        let r = syev(
            &a,
            EigenRange::Index(0, 8),
            true,
            &OneStageOptions {
                nb: 8,
                method: Method::BisectionInverse,
            },
        )
        .unwrap();
        assert_eq!(r.eigenvalues.len(), 8);
        assert!(norms::eigenvalue_distance(&r.eigenvalues, &oracle.eigenvalues[0..8]) < 1e-10);
        let z = r.eigenvectors.unwrap();
        assert_eq!(z.cols(), 8);
        assert!(norms::eigen_residual(&a, &r.eigenvalues, &z) < 200.0);
    }

    #[test]
    fn values_only_no_vectors() {
        let a = gen::random_symmetric(20, 41);
        let r = syev(&a, EigenRange::All, false, &OneStageOptions::default()).unwrap();
        assert!(r.eigenvectors.is_none());
        assert_eq!(r.timings.backtransform.as_nanos(), 0);
    }
}
