//! Baseline one-stage symmetric eigensolver (LAPACK `dsyevd`-style).
//!
//! This crate is the comparison target of every speedup figure in the
//! paper: the classic pipeline that reduces the dense matrix *directly*
//! to tridiagonal form with blocked Householder transformations
//! ([`sytrd`]), solves the tridiagonal problem, and back-transforms the
//! eigenvectors with the single orthogonal factor `Q1` ([`ormtr`]).
//!
//! Its defining property — and the reason the two-stage algorithm beats
//! it — is that every panel step performs a symmetric matrix-vector
//! product (`symv`) with the *entire trailing submatrix*: `~4/3 n^3` flops
//! executed at memory-bandwidth speed (`beta` in the paper's model,
//! Eq. (4)), which no number of cores can accelerate once the bus
//! saturates: `lim_{p->inf} t_1s = 4/3 n^3 / beta`.
//!
//! The implementation parallelizes everything that *can* be parallelized
//! (the `symv` itself, the `syr2k` trailing updates, the blocked
//! back-transformation) so the comparison against the two-stage pipeline
//! is honest — the paper compared against multi-threaded MKL, not against
//! a strawman.

pub mod bidiagonal;
pub mod driver;
pub mod hessenberg;
pub mod ormtr;
pub mod sytrd;

pub use driver::{syev, OneStageOptions, OneStageResult};
