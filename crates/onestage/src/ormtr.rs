//! Blocked application of the one-stage orthogonal factor (`dormtr`).
//!
//! After `A = Q1 T Q1^T`, the eigenvectors of `A` are `Q1 E` where `E`
//! are the eigenvectors of `T`. `Q1 = H_0 H_1 ... H_{n-2}` is applied
//! from the left in reverse reflector order, `nb` reflectors at a time
//! through the compact WY representation — all Level-3 work, the `2 n^3 f`
//! term of the paper's Eq. (4).

use crate::sytrd::TridiagFactor;
use rayon::prelude::*;
use tseig_kernels::blas3::Trans;
use tseig_kernels::householder::{larfb, larft, Side};
use tseig_matrix::Matrix;

/// `C <- Q1 C` with `Q1` from [`crate::sytrd::sytrd`]. `C` must have `n`
/// rows; any number of columns (eigenvector subsets included).
pub fn ormtr_left(f: &TridiagFactor, c: &mut Matrix) {
    let n = f.a.rows();
    assert_eq!(c.rows(), n, "C must have n rows");
    if n <= 1 || c.cols() == 0 {
        return;
    }
    let nb = f.nb.max(1);
    let ncols = c.cols();
    let nrefl = n - 1; // reflectors j = 0..n-1 (trailing ones may be trivial)

    // Column-parallel: each worker applies the whole reflector sequence
    // to its own panel of C — no inter-thread traffic (same layout the
    // paper uses for the Q2 application).
    let threads = rayon::current_num_threads();
    let jb = ncols.div_ceil(threads.max(1)).max(16).min(ncols);
    let ldc = c.ld();
    c.as_mut_slice().par_chunks_mut(jb * ldc).for_each(|panel| {
        let pcols = panel.len() / ldc + usize::from(panel.len() % ldc != 0);
        apply_panel(f, n, nb, nrefl, panel, ldc, pcols);
    });
}

fn apply_panel(
    f: &TridiagFactor,
    n: usize,
    nb: usize,
    nrefl: usize,
    c: &mut [f64],
    ldc: usize,
    ncols: usize,
) {
    // Blocks of reflectors [j0, j0+kb), applied in reverse block order.
    let lda = f.a.ld();
    let nblocks = nrefl.div_ceil(nb);
    for b in (0..nblocks).rev() {
        let j0 = b * nb;
        let kb = nb.min(nrefl - j0);
        // Reflector j acts on rows j+1..n; the block's V is (n - j0 - 1) x kb
        // with column l having its unit at local row l.
        let mrows = n - j0 - 1;
        let mut v = Matrix::zeros(mrows, kb);
        for l in 0..kb {
            let j = j0 + l;
            v[(l, l)] = 1.0;
            for r in (j + 2)..n {
                v[(r - j0 - 1, l)] = f.a.as_slice()[r + j * lda];
            }
        }
        let mut t = vec![0.0f64; kb * kb];
        larft(
            mrows,
            kb,
            v.as_slice(),
            mrows,
            &f.tau[j0..j0 + kb],
            &mut t,
            kb,
        );
        larfb(
            Side::Left,
            Trans::No,
            mrows,
            ncols,
            kb,
            v.as_slice(),
            mrows,
            &t,
            kb,
            &mut c[j0 + 1..],
            ldc,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sytrd::sytrd;
    use tseig_matrix::{gen, norms};

    #[test]
    fn q_is_orthogonal() {
        let a = gen::random_symmetric(40, 11);
        let f = sytrd(a, 8);
        let mut q = Matrix::identity(40);
        ormtr_left(&f, &mut q);
        assert!(norms::orthogonality(&q) < 100.0);
    }

    #[test]
    fn applying_q_to_subset_matches_full() {
        let n = 30;
        let a = gen::random_symmetric(n, 12);
        let f = sytrd(a, 4);
        let mut full = Matrix::identity(n);
        ormtr_left(&f, &mut full);
        // Subset: just columns 3..7 of the identity.
        let mut sub = Matrix::from_fn(n, 4, |i, j| if i == j + 3 { 1.0 } else { 0.0 });
        ormtr_left(&f, &mut sub);
        for jj in 0..4 {
            for i in 0..n {
                assert!((sub[(i, jj)] - full[(i, jj + 3)]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn reconstructs_a_from_t() {
        // Q T Q^T must equal the original A.
        let n = 25;
        let a0 = gen::random_symmetric(n, 13);
        let f = sytrd(a0.clone(), 6);
        let mut q = Matrix::identity(n);
        ormtr_left(&f, &mut q);
        let t = f.tridiagonal().to_dense();
        let qtqt = q.multiply(&t).unwrap().multiply(&q.transpose()).unwrap();
        let tol = 100.0 * norms::norm1(&a0) * n as f64 * norms::EPS;
        assert!(qtqt.approx_eq(&a0, tol), "Q T Q^T != A");
    }

    #[test]
    fn trivial_sizes() {
        let f = sytrd(Matrix::identity(1), 4);
        let mut c = Matrix::identity(1);
        ormtr_left(&f, &mut c);
        assert_eq!(c[(0, 0)], 1.0);
    }
}
