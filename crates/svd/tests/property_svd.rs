//! Property tests for the SVD pipeline.

use proptest::prelude::*;
use tseig_matrix::{norms, Matrix};
use tseig_svd::{bdsqr, drivers::svd_residual, gesvd};

fn rand_mat(m: usize, n: usize, seed: u64) -> Matrix {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    /// Full SVD invariants on random shapes.
    #[test]
    fn gesvd_invariants(n in 1usize..24, extra in 0usize..12, seed in 0u64..400) {
        let m = n + extra;
        let a = rand_mat(m, n, seed);
        let svd = gesvd(&a).unwrap();
        // Descending non-negative.
        prop_assert!(svd.s.windows(2).all(|w| w[0] >= w[1]));
        prop_assert!(svd.s.iter().all(|&x| x >= 0.0));
        // Reconstruction + orthogonality.
        prop_assert!(svd_residual(&a, &svd) < 1000.0);
        prop_assert!(norms::orthogonality(&svd.u) < 500.0);
        prop_assert!(norms::orthogonality(&svd.v) < 500.0);
        // Frobenius norm preserved: sum s^2 == ||A||_F^2.
        let fro2: f64 = a.as_slice().iter().map(|x| x * x).sum();
        let s2: f64 = svd.s.iter().map(|s| s * s).sum();
        prop_assert!((fro2 - s2).abs() < 1e-8 * (1.0 + fro2));
    }

    /// bdsqr matches the B^T B eigen-oracle for random bidiagonals.
    #[test]
    fn bdsqr_matches_oracle(n in 1usize..25, seed in 0u64..400) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let d0: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let e0: Vec<f64> = (0..n.saturating_sub(1)).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut b = Matrix::zeros(n, n);
        for j in 0..n {
            b[(j, j)] = d0[j];
            if j + 1 < n {
                b[(j, j + 1)] = e0[j];
            }
        }
        let btb = b.transpose().multiply(&b).unwrap();
        let mut want: Vec<f64> = tseig_kernels::reference::jacobi_eigen(&btb, false)
            .unwrap()
            .eigenvalues
            .iter()
            .map(|x| x.max(0.0).sqrt())
            .collect();
        want.reverse();
        let mut d = d0.clone();
        let mut e = e0.clone();
        bdsqr(&mut d, &mut e, None, None).unwrap();
        prop_assert!(norms::eigenvalue_distance(&d, &want) < 1e-8);
    }

    /// Scaling A scales the singular values linearly.
    #[test]
    fn scaling_homogeneity(n in 2usize..15, seed in 0u64..400, scale in 0.1f64..10.0) {
        let a = rand_mat(n + 2, n, seed);
        let mut sa = a.clone();
        for v in sa.as_mut_slice() {
            *v *= scale;
        }
        let s1 = gesvd(&a).unwrap().s;
        let s2 = gesvd(&sa).unwrap().s;
        for (x, y) in s1.iter().zip(&s2) {
            prop_assert!((x * scale - y).abs() < 1e-9 * (1.0 + y.abs()));
        }
    }
}
