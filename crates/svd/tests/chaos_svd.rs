//! Deterministic fault injection through the SVD recovery ladder.
//!
//! Built only with `--features chaos` (see the `[[test]]` entry in
//! `crates/svd/Cargo.toml`). Same contract as the core ladder tests:
//! an injected failure either *recovers* — result within bounds, the
//! detour recorded in `SolveDiagnostics` — or surfaces as a structured
//! `Error`; no panic escapes the driver.

use std::sync::Mutex;
use tseig_matrix::chaos::{self, Plan, Site};
use tseig_matrix::diagnostics::Recovery;
use tseig_matrix::{norms, Error, Matrix};
use tseig_svd::drivers::{svd_residual, GeSvd, Svd, SvdMethod};
use tseig_svd::gesvd;
use tseig_svd::stage2::Stage2Exec;

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn with_plan<T>(plan: Plan, f: impl FnOnce() -> T) -> T {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    struct ResetOnDrop;
    impl Drop for ResetOnDrop {
        fn drop(&mut self) {
            chaos::reset();
        }
    }
    let _reset = ResetOnDrop;
    chaos::install(plan);
    f()
}

fn rand_mat(m: usize, n: usize, seed: u64) -> Matrix {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0))
}

fn result_ok(a: &Matrix, svd: &Svd) {
    assert!(
        svd_residual(a, svd) < 500.0,
        "residual {}",
        svd_residual(a, svd)
    );
    assert!(norms::orthogonality(&svd.u) < 500.0);
    assert!(norms::orthogonality(&svd.v) < 500.0);
}

fn has<F: Fn(&Recovery) -> bool>(svd: &Svd, pred: F) -> bool {
    svd.diagnostics.recoveries.iter().any(pred)
}

/// An injected `bdsqr` iteration-cap failure is absorbed by the
/// perturbed retry on the one-stage pipeline.
#[test]
fn bdsqr_stall_recovers_one_stage() {
    let a = rand_mat(24, 20, 1);
    let plan = Plan::new().with(Site::BdsqrNoConv, 1);
    let svd = with_plan(plan, || {
        gesvd(&a).expect("perturbed retry must rescue bdsqr")
    });
    assert!(svd.diagnostics.degraded);
    assert!(
        has(&svd, |x| matches!(x, Recovery::BdsqrPerturbedRetry { .. })),
        "{:?}",
        svd.diagnostics.recoveries
    );
    result_ok(&a, &svd);
}

/// Same rung on the two-stage pipeline, under every scheduler.
#[test]
fn bdsqr_stall_recovers_two_stage() {
    for sched in [
        Stage2Exec::Serial,
        Stage2Exec::Static(3),
        Stage2Exec::Dynamic(4),
    ] {
        let a = rand_mat(26, 26, 2);
        let plan = Plan::new().with(Site::BdsqrNoConv, 1);
        let svd = with_plan(plan, || {
            GeSvd::new()
                .method(SvdMethod::TwoStage)
                .nb(4)
                .scheduler(sched)
                .solve(&a)
                .expect("perturbed retry must rescue bdsqr")
        });
        assert!(svd.diagnostics.degraded, "{sched:?}");
        assert!(
            has(&svd, |x| matches!(x, Recovery::BdsqrPerturbedRetry { .. })),
            "{sched:?}: {:?}",
            svd.diagnostics.recoveries
        );
        result_ok(&a, &svd);
    }
}

/// Two injected stalls exhaust the single retry: structured error, no
/// panic.
#[test]
fn bdsqr_double_stall_is_a_structured_error() {
    let a = rand_mat(16, 16, 3);
    let plan = Plan::new().with(Site::BdsqrNoConv, 2);
    let err = with_plan(plan, || {
        gesvd(&a).expect_err("exhausted retries must surface as an error")
    });
    assert!(
        matches!(err, Error::NoConvergence { .. }),
        "expected NoConvergence, got {err:?}"
    );
}

/// A worker panic inside the scheduled bulge chase falls back to the
/// serial chase and is recorded.
#[test]
fn chase_task_panic_falls_back_to_serial() {
    let a = rand_mat(30, 30, 4);
    let plan = Plan::new().with(Site::TaskPanic, 1);
    let svd = with_plan(plan, || {
        GeSvd::new()
            .method(SvdMethod::TwoStage)
            .nb(4)
            .scheduler(Stage2Exec::Dynamic(4))
            .solve(&a)
            .expect("serial fallback must rescue the chase")
    });
    if chaos::reached(Site::TaskPanic) > 0 {
        assert!(
            has(&svd, |x| matches!(x, Recovery::SchedulerFallback { .. })),
            "{:?}",
            svd.diagnostics.recoveries
        );
        assert!(svd.diagnostics.degraded);
    }
    result_ok(&a, &svd);
}

/// One poisoned request in a stream of solves degrades alone: the other
/// requests come out clean (the ladder does not leak state across
/// solves).
#[test]
fn single_poisoned_solve_degrades_alone() {
    let inputs: Vec<Matrix> = (0..4).map(|s| rand_mat(18, 18, 50 + s)).collect();
    let plan = Plan::new().with(Site::BdsqrNoConv, 1);
    let results: Vec<Svd> = with_plan(plan, || {
        inputs
            .iter()
            .map(|a| gesvd(a).expect("no request may fail outright"))
            .collect()
    });
    let mut degraded = 0usize;
    for (a, svd) in inputs.iter().zip(&results) {
        result_ok(a, svd);
        if svd.diagnostics.degraded {
            degraded += 1;
            assert!(has(svd, |x| matches!(
                x,
                Recovery::BdsqrPerturbedRetry { .. }
            )));
        }
    }
    assert_eq!(degraded, 1, "exactly the injected failure degrades");
}
