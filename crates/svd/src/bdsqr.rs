//! Implicit-shift Golub–Kahan QR on an upper bidiagonal matrix
//! (the `dbdsqr` role).
//!
//! Each sweep applies alternating right/left Givens rotations chasing a
//! bulge down the bidiagonal; the shift comes from the trailing `2x2` of
//! `B^T B` (Wilkinson). Rotations are accumulated into `U` (left) and
//! `V` (right) when supplied, so `B = U' diag(s) V'^T` composes with the
//! caller's transformations. Deflation splits at negligible
//! super-diagonals; a negligible *diagonal* is handled by the classical
//! row-annihilation sweep so singular matrices converge too.

use tseig_kernels::contract;
use tseig_matrix::{chaos, Ctrl, Error, Matrix, Result};

const MAX_ITER_PER_VALUE: usize = 60;

/// Diagonalize the upper bidiagonal `(d, e)` in place: on success `d`
/// holds the singular values, descending, non-negative; `e` is
/// destroyed.
///
/// `u`/`v` (if given) must have `n` columns; the rotations are applied
/// from the right (`U <- U G`), and columns are permuted/sign-flipped
/// along with `d`, so passing the bidiagonalization's factors yields the
/// full SVD.
pub fn bdsqr(
    d: &mut [f64],
    e: &mut [f64],
    u: Option<&mut Matrix>,
    v: Option<&mut Matrix>,
) -> Result<()> {
    bdsqr_with(d, e, u, v, &Ctrl::NONE)
}

/// [`bdsqr`] under a request control: polls `ctrl` once per deflation
/// step of the outer sweep loop — an armed cancel or expired deadline
/// aborts with the structured error (the bidiagonal is left
/// partially-rotated; callers snapshot `(d, e)` before entry, as
/// the retry rung already does).
pub fn bdsqr_with(
    d: &mut [f64],
    e: &mut [f64],
    mut u: Option<&mut Matrix>,
    mut v: Option<&mut Matrix>,
    ctrl: &Ctrl,
) -> Result<()> {
    let n = d.len();
    if n == 0 {
        return Ok(());
    }
    assert!(e.len() + 1 == n || (n == 1 && e.is_empty()));
    if let Some(m) = u.as_ref() {
        assert_eq!(m.cols(), n, "U must have n columns");
    }
    if let Some(m) = v.as_ref() {
        assert_eq!(m.cols(), n, "V must have n columns");
    }
    if contract::enabled() {
        contract::require_vec("bdsqr", "d", d, n);
        contract::require_vec("bdsqr", "e", e, n.saturating_sub(1));
        contract::require_finite_vec("bdsqr", "d", d, n);
        contract::require_finite_vec("bdsqr", "e", e, n.saturating_sub(1));
    }
    if chaos::fire(chaos::Site::BdsqrNoConv) {
        return Err(Error::NoConvergence {
            index: n - 1,
            iterations: MAX_ITER_PER_VALUE * n,
        });
    }
    let eps = f64::EPSILON;

    // Iterate on the trailing index of the active block.
    let mut m = n - 1;
    let mut iter_budget = MAX_ITER_PER_VALUE * n;
    while m > 0 {
        ctrl.checkpoint()?;
        // Deflate converged tail entries.
        while m > 0 && e[m - 1].abs() <= eps * (d[m - 1].abs() + d[m].abs()) {
            e[m - 1] = 0.0;
            m -= 1;
        }
        if m == 0 {
            break;
        }
        // Find the start of the active block.
        let mut l = m;
        while l > 0 && e[l - 1].abs() > eps * (d[l - 1].abs() + d[l].abs()) {
            l -= 1;
        }
        if iter_budget == 0 {
            return Err(Error::NoConvergence {
                index: m,
                iterations: MAX_ITER_PER_VALUE * n,
            });
        }
        iter_budget -= 1;

        // A negligible diagonal inside the block forces a split: rotate
        // the offending row's super-diagonal away to the right with left
        // rotations, then retry.
        let mut split = false;
        for k in l..m {
            if d[k].abs()
                <= eps * (d.iter().fold(0.0f64, |a, &b| a.max(b.abs())) + f64::MIN_POSITIVE)
            {
                annihilate_row(d, e, k, m, u.as_deref_mut());
                split = true;
                break;
            }
        }
        if split {
            continue;
        }

        golub_kahan_step(d, e, l, m, u.as_deref_mut(), v.as_deref_mut());
    }

    // Make singular values non-negative (flip the U column sign).
    for (j, dv) in d.iter_mut().enumerate() {
        if *dv < 0.0 {
            *dv = -*dv;
            if let Some(um) = u.as_deref_mut() {
                for r in 0..um.rows() {
                    um[(r, j)] = -um[(r, j)];
                }
            }
        }
    }
    // Sort descending, permuting U/V columns.
    for i in 0..n.saturating_sub(1) {
        let mut kmax = i;
        for j in i + 1..n {
            if d[j] > d[kmax] {
                kmax = j;
            }
        }
        if kmax != i {
            d.swap(i, kmax);
            if let Some(um) = u.as_deref_mut() {
                let (a, b) = um.cols_mut_pair(i, kmax);
                a.swap_with_slice(b);
            }
            if let Some(vm) = v.as_deref_mut() {
                let (a, b) = vm.cols_mut_pair(i, kmax);
                a.swap_with_slice(b);
            }
        }
    }
    Ok(())
}

/// `(c, s, r)` with `c*a + s*b = r`, `-s*a + c*b = 0`.
#[inline]
fn givens(a: f64, b: f64) -> (f64, f64, f64) {
    if b == 0.0 {
        (1.0, 0.0, a)
    } else {
        let r = a.hypot(b).copysign(if a >= 0.0 { 1.0 } else { -1.0 });
        (a / r, b / r, r)
    }
}

/// Apply `X <- X G(j1, j2; c, s)` to the columns of `x`
/// (`col_j1' = c col_j1 + s col_j2`, `col_j2' = -s col_j1 + c col_j2`).
fn rot_cols(x: &mut Matrix, j1: usize, j2: usize, c: f64, s: f64) {
    let (a, b) = x.cols_mut_pair(j1, j2);
    for i in 0..a.len() {
        let (p, q) = (a[i], b[i]);
        a[i] = c * p + s * q;
        b[i] = -s * p + c * q;
    }
}

/// One implicit-shift sweep on the block `l..=m`.
fn golub_kahan_step(
    d: &mut [f64],
    e: &mut [f64],
    l: usize,
    m: usize,
    mut u: Option<&mut Matrix>,
    mut v: Option<&mut Matrix>,
) {
    // Wilkinson shift from the trailing 2x2 of B^T B.
    let dm1 = d[m - 1];
    let em2 = if m >= 2 && m - 1 > l { e[m - 2] } else { 0.0 };
    let dm = d[m];
    let em1 = e[m - 1];
    let t11 = dm1 * dm1 + em2 * em2;
    let t12 = dm1 * em1;
    let t22 = dm * dm + em1 * em1;
    let delta = 0.5 * (t11 - t22);
    let mu = if delta == 0.0 && t12 == 0.0 {
        t22
    } else {
        let denom = delta
            + delta
                .hypot(t12)
                .copysign(if delta >= 0.0 { 1.0 } else { -1.0 });
        if denom == 0.0 {
            t22
        } else {
            t22 - t12 * t12 / denom
        }
    };

    let mut y = d[l] * d[l] - mu;
    let mut z = d[l] * e[l];

    for k in l..m {
        // Right rotation on columns (k, k+1): zero z against y. For
        // k == l the pair is the virtual shifted vector; afterwards it is
        // (e[k-1], bulge at (k-1, k+1)).
        let (c, s, r) = givens(y, z);
        if k > l {
            e[k - 1] = r;
        }
        let (dk, ek, dk1) = (d[k], e[k], d[k + 1]);
        d[k] = c * dk + s * ek;
        e[k] = -s * dk + c * ek;
        let bulge_below = s * dk1; // new entry at (k+1, k)
        d[k + 1] = c * dk1;
        if let Some(vm) = v.as_deref_mut() {
            rot_cols(vm, k, k + 1, c, s);
        }
        // Left rotation on rows (k, k+1): zero the (k+1, k) bulge.
        let (c2, s2, r2) = givens(d[k], bulge_below);
        d[k] = r2;
        let (ek, dk1) = (e[k], d[k + 1]);
        e[k] = c2 * ek + s2 * dk1;
        d[k + 1] = -s2 * ek + c2 * dk1;
        if let Some(um) = u.as_deref_mut() {
            rot_cols(um, k, k + 1, c2, s2);
        }
        if k + 1 < m {
            // Bulge at (k, k+2) becomes the next step's z.
            let ek1 = e[k + 1];
            z = s2 * ek1;
            e[k + 1] = c2 * ek1;
            y = e[k];
        }
    }
}

/// Diagonal `d[k]` is (numerically) zero: annihilate `e[k]` by rotating
/// row `k` against rows `k+1..=m` from the left (Golub–Reinsch
/// cancellation), splitting the block.
fn annihilate_row(d: &mut [f64], e: &mut [f64], k: usize, m: usize, mut u: Option<&mut Matrix>) {
    let mut f = e[k];
    e[k] = 0.0;
    for i in k + 1..=m {
        // Rotate rows (i, k) to zero the (k, i) entry f against d[i];
        // this pushes the coupling one column right (to (k, i+1)).
        let (c, s, r) = givens(d[i], f);
        d[i] = r;
        if let Some(um) = u.as_deref_mut() {
            rot_cols(um, i, k, c, s);
        }
        if i < m {
            f = -s * e[i];
            e[i] *= c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tseig_matrix::norms;

    /// Oracle: singular values of the bidiagonal as sqrt of the
    /// eigenvalues of B^T B via the Jacobi reference.
    fn oracle_singular_values(d: &[f64], e: &[f64]) -> Vec<f64> {
        let n = d.len();
        let mut b = Matrix::zeros(n, n);
        for j in 0..n {
            b[(j, j)] = d[j];
            if j + 1 < n {
                b[(j, j + 1)] = e[j];
            }
        }
        let btb = b.transpose().multiply(&b).unwrap();
        let mut vals: Vec<f64> = tseig_kernels::reference::jacobi_eigen(&btb, false)
            .unwrap()
            .eigenvalues
            .iter()
            .map(|x| x.max(0.0).sqrt())
            .collect();
        vals.reverse(); // descending
        vals
    }

    fn dense_bidiag(d: &[f64], e: &[f64]) -> Matrix {
        let n = d.len();
        let mut b = Matrix::zeros(n, n);
        for j in 0..n {
            b[(j, j)] = d[j];
            if j + 1 < n {
                b[(j, j + 1)] = e[j];
            }
        }
        b
    }

    fn check(d0: Vec<f64>, e0: Vec<f64>, tag: &str) {
        let n = d0.len();
        let b = dense_bidiag(&d0, &e0);
        let want = oracle_singular_values(&d0, &e0);
        let mut d = d0.clone();
        let mut e = e0.clone();
        let mut u = Matrix::identity(n);
        let mut v = Matrix::identity(n);
        bdsqr(&mut d, &mut e, Some(&mut u), Some(&mut v)).unwrap();
        assert!(d.windows(2).all(|w| w[0] >= w[1]), "{tag}: not descending");
        assert!(d.iter().all(|&x| x >= 0.0), "{tag}: negative sv");
        assert!(
            norms::eigenvalue_distance(&d, &want) < 1e-9,
            "{tag}: singular values wrong\n got {d:?}\nwant {want:?}"
        );
        // Reconstruction: U diag(d) V^T == B.
        let mut sig = Matrix::zeros(n, n);
        for j in 0..n {
            sig[(j, j)] = d[j];
        }
        let recon = u.multiply(&sig).unwrap().multiply(&v.transpose()).unwrap();
        assert!(
            recon.approx_eq(&b, 1e-10 * (1.0 + b.max_abs()) * n as f64),
            "{tag}: U S V^T != B"
        );
        assert!(norms::orthogonality(&u) < 200.0, "{tag}: U not orthogonal");
        assert!(norms::orthogonality(&v) < 200.0, "{tag}: V not orthogonal");
    }

    #[test]
    fn two_by_two() {
        check(vec![3.0, 1.0], vec![2.0], "2x2");
        check(vec![1.0, 1.0], vec![1e-3], "near-diagonal");
    }

    #[test]
    fn random_bidiagonals() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(90);
        for trial in 0..5 {
            let n = 5 + trial * 7;
            let d: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let e: Vec<f64> = (0..n - 1).map(|_| rng.gen_range(-1.0..1.0)).collect();
            check(d, e, &format!("random{trial}"));
        }
    }

    #[test]
    fn graded_bidiagonal() {
        let n = 12;
        let d: Vec<f64> = (0..n).map(|i| 10f64.powi(-(i as i32) / 3)).collect();
        let e = vec![0.5; n - 1];
        check(d, e, "graded");
    }

    #[test]
    fn exactly_singular() {
        // Zero diagonal in the middle: rank-deficient bidiagonal.
        let d = vec![2.0, 0.0, 1.0, 3.0];
        let e = vec![1.0, 1.0, 0.5];
        check(d, e, "singular");
        // Smallest singular value must be (near) zero.
        let mut dd = vec![2.0, 0.0, 1.0, 3.0];
        let mut ee = vec![1.0, 1.0, 0.5];
        bdsqr(&mut dd, &mut ee, None, None).unwrap();
        assert!(dd[3] < 1e-12, "zero sv not found: {dd:?}");
    }

    #[test]
    fn already_diagonal() {
        check(vec![3.0, -1.0, 2.0], vec![0.0, 0.0], "diag");
    }

    #[test]
    fn single_element() {
        let mut d = vec![-4.0];
        let mut e: Vec<f64> = vec![];
        let mut u = Matrix::identity(1);
        bdsqr(&mut d, &mut e, Some(&mut u), None).unwrap();
        assert_eq!(d[0], 4.0);
        assert_eq!(u[(0, 0)], -1.0);
    }
}
