//! Singular value decomposition on the `tseig` substrate.
//!
//! The paper's §4.1 compares the symmetric eigenproblem against the
//! authors' two-stage SVD work [17]: the SVD costs `8/3 n^3 + 4 n^3 +
//! 4 n^3` where the eigenproblem costs `4/3 n^3 + 2 n^3 + 2 n^3` — the
//! lack of symmetry doubles every term, and the `O(n^2)` bulge chase
//! (the Amdahl fraction) is *relatively* smaller, which is why the
//! paper's eigenproblem is the harder parallelization target. This crate
//! makes that comparison concrete:
//!
//! * [`bdsqr`] — implicit-shift Golub–Kahan QR on a bidiagonal matrix,
//!   with singular-vector accumulation (the `dbdsqr` role),
//! * [`drivers::gesvd`] — the one-stage pipeline: `gebrd`
//!   bidiagonalization (from `tseig-onestage`, all `gemv`-bound),
//!   reflector back-transformation of `U`/`V`, and [`bdsqr`],
//! * flop-profile tests that verify the §4.1 ratios with the global
//!   counters.

pub mod bdsqr;
pub mod drivers;
pub mod stage1;
pub mod stage2;

pub use bdsqr::bdsqr;
pub use drivers::{gesvd, GeSvd, Svd, SvdBatch, SvdMethod, SvdPlan};
