//! Stage 1 of the two-stage SVD: dense to band-bidiagonal reduction
//! (`ge2bb`).
//!
//! The general-matrix counterpart of `tseig-core`'s `sy2sb`. For each
//! panel of `b` columns the algorithm
//!
//! 1. QR-factorizes the column panel `A[j0.., j0..j0+b]` (zeroing it
//!    below the diagonal) and applies `Q^T` to the trailing columns as a
//!    blocked reflector (`larfb`, all Level-3), then
//! 2. LQ-factorizes the row panel `A[j0..j0+b, j0+b..n]` (via QR of its
//!    transpose), leaving a lower-triangular block in columns
//!    `j0+b..j0+2b` — which caps the superdiagonal extent of every row
//!    at exactly `b` — and applies the right factor to the trailing rows
//!    as a blocked reflector.
//!
//! The result is upper-triangular band form: `A = Q1 B P1^T` with `B`
//! of bandwidth `b`, every flop `gemm`-class. `Q1`/`P1` panels are
//! retained for the back-transformation of the singular vectors.

use tseig_kernels::contract;
use tseig_kernels::householder::{larfb_with_work, Side};
use tseig_kernels::qr::{extract_v_t_into, geqrf_ws, QrWs};
use tseig_kernels::Trans;
use tseig_matrix::workspace::reset_f64s;
use tseig_matrix::{Ctrl, GeBandMatrix, Matrix};

/// One panel's block reflector `I - V T V^T` acting on the contiguous
/// coordinate range `j0 .. j0 + V.rows()` (rows for `Q1` panels, columns
/// for `P1` panels).
pub struct GbPanel {
    /// First global coordinate the reflector touches.
    pub j0: usize,
    /// Explicit-V block (unit diagonal, zeros above).
    pub v: Matrix,
    /// `k x k` triangular factor, column-major.
    pub t: Vec<f64>,
}

/// Result of the stage-1 reduction.
pub struct BandBidiForm {
    /// The upper-band matrix `B` (logical bandwidth `b = kl()`, with
    /// `ku = 2b` fill diagonals ready for the bulge chase).
    pub band: GeBandMatrix,
    /// Left panels composing `Q1` in application order.
    pub qpanels: Vec<GbPanel>,
    /// Right panels composing `P1` in application order.
    pub ppanels: Vec<GbPanel>,
    /// Bandwidth.
    pub b: usize,
}

/// Reduce a square dense matrix to upper band form with bandwidth `b`:
/// `A = Q1 B P1^T`. `ib` is the inner blocking of the panel QR
/// (defaults to `b` when 0).
pub fn ge2bb(a: &Matrix, b: usize, ib: usize) -> BandBidiForm {
    match ge2bb_with(a, b, ib, &Ctrl::NONE) {
        Ok(form) => form,
        Err(e) => unreachable!("inert control failed: {e}"),
    }
}

/// [`ge2bb`] under a request control: polls `ctrl` once per panel — an
/// armed cancel or expired deadline aborts between panels with the
/// structured error and no partial output escapes.
pub fn ge2bb_with(
    a: &Matrix,
    b: usize,
    ib: usize,
    ctrl: &Ctrl,
) -> tseig_matrix::Result<BandBidiForm> {
    assert_eq!(
        a.rows(),
        a.cols(),
        "two-stage reduction expects a square matrix"
    );
    let n = a.rows();
    if contract::enabled() {
        contract::require_mat("ge2bb", "a", a.as_slice(), n, n, a.ld());
        contract::require_finite_mat("ge2bb", "a", a.as_slice(), n, n, a.ld());
    }
    let b = b.max(1);
    let ib = if ib == 0 { b } else { ib };
    let mut work = a.clone();
    let lda = work.ld().max(1);
    let mut qpanels = Vec::new();
    let mut ppanels = Vec::new();
    let mut tau = Vec::new();
    let mut qr = QrWs::new();
    let mut rp = Vec::new(); // transposed row panel
    let mut lb = Vec::new(); // larfb workspace

    let mut j0 = 0usize;
    while j0 < n {
        ctrl.checkpoint()?;
        let jb = b.min(n - j0);
        let m0 = n - j0;
        // QR of the column panel: zero it below the diagonal.
        reset_f64s(&mut tau, jb);
        {
            let panel = &mut work.as_mut_slice()[j0 + j0 * lda..];
            geqrf_ws(m0, jb, panel, lda, &mut tau, ib, &mut qr);
        }
        let mut qp = GbPanel {
            j0,
            v: Matrix::zeros(0, 0),
            t: Vec::new(),
        };
        {
            let panel = &work.as_slice()[j0 + j0 * lda..];
            extract_v_t_into(panel, lda, m0, jb, &tau, &mut qp.v, &mut qp.t);
        }
        let wcols = n - j0 - jb;
        if wcols > 0 {
            // Trailing update C <- Q^T C on columns j0+jb..n.
            reset_f64s(&mut lb, 2 * jb * wcols);
            larfb_with_work(
                Side::Left,
                Trans::Yes,
                m0,
                wcols,
                jb,
                qp.v.as_slice(),
                m0,
                &qp.t,
                jb,
                &mut work.as_mut_slice()[j0 + (j0 + jb) * lda..],
                lda,
                &mut lb,
            );
        }
        // Clear the stored reflector tails so the band harvest below
        // sees the true (banded) matrix; R itself stays.
        for c in 0..jb {
            for i in j0 + c + 1..n {
                work[(i, j0 + c)] = 0.0;
            }
        }
        qpanels.push(qp);

        // LQ of the row panel via QR of its transpose: rows j0..j0+jb
        // become [L 0] with L lower triangular in columns j0+jb..j0+2b.
        if wcols > 1 {
            let w = wcols;
            let kk = w.min(jb);
            reset_f64s(&mut rp, w * jb);
            for c in 0..jb {
                for i in 0..w {
                    rp[i + c * w] = work[(j0 + c, j0 + jb + i)];
                }
            }
            reset_f64s(&mut tau, kk);
            geqrf_ws(w, jb, &mut rp, w, &mut tau, ib, &mut qr);
            let mut pp = GbPanel {
                j0: j0 + jb,
                v: Matrix::zeros(0, 0),
                t: Vec::new(),
            };
            extract_v_t_into(&rp, w, w, kk, &tau, &mut pp.v, &mut pp.t);
            // Row panel <- [Rt^T 0] (the lower-trapezoidal L).
            for c in 0..jb {
                for i in 0..w {
                    work[(j0 + c, j0 + jb + i)] =
                        if i <= c && i < kk { rp[i + c * w] } else { 0.0 };
                }
            }
            // Trailing rows: C <- C P with P = H_1 ... H_kk.
            let mrows = n - j0 - jb;
            reset_f64s(&mut lb, 2 * mrows * kk);
            larfb_with_work(
                Side::Right,
                Trans::No,
                mrows,
                w,
                kk,
                pp.v.as_slice(),
                w,
                &pp.t,
                kk,
                &mut work.as_mut_slice()[(j0 + jb) + (j0 + jb) * lda..],
                lda,
                &mut lb,
            );
            ppanels.push(pp);
        }
        j0 += jb;
    }

    // Harvest the band (upper triangle only: the subdiagonal is zero by
    // construction, the superdiagonal extent is capped at b).
    let mut band = GeBandMatrix::zeros(n, b, 2 * b);
    for j in 0..n {
        for i in j.saturating_sub(b)..=j {
            band.set(i, j, work[(i, j)]);
        }
    }
    Ok(BandBidiForm {
        band,
        qpanels,
        ppanels,
        b,
    })
}

/// Apply `Q1` to `u` from the left: `u <- Q1 u` with
/// `Q1 = Q_0 Q_1 ... Q_last` (last panel applied first). With `u = U_b`
/// this completes the left singular vectors.
pub fn apply_q1(panels: &[GbPanel], u: &mut Matrix) {
    apply_panels(panels, u);
}

/// Apply `P1` to `v` from the left (acting on the column coordinate
/// space): `v <- P1 v` with `P1 = P_0 P_1 ... P_last`. With `v = V_b`
/// this completes the right singular vectors.
pub fn apply_p1(panels: &[GbPanel], v: &mut Matrix) {
    apply_panels(panels, v);
}

fn apply_panels(panels: &[GbPanel], u: &mut Matrix) {
    let nc = u.cols();
    let ldu = u.ld();
    let mut lb = Vec::new();
    for p in panels.iter().rev() {
        let m0 = p.v.rows();
        let kk = p.v.cols();
        assert!(p.j0 + m0 <= u.rows(), "panel exceeds the target matrix");
        reset_f64s(&mut lb, 2 * kk * nc);
        larfb_with_work(
            Side::Left,
            Trans::No,
            m0,
            nc,
            kk,
            p.v.as_slice(),
            m0,
            &p.t,
            kk,
            &mut u.as_mut_slice()[p.j0..],
            ldu,
            &mut lb,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tseig_matrix::norms;

    fn rand_mat(n: usize, seed: u64) -> Matrix {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0))
    }

    fn check(n: usize, b: usize, seed: u64) {
        let a = rand_mat(n, seed);
        let form = ge2bb(&a, b, 0);
        // The harvested band must reproduce A as Q1 B P1^T.
        let mut q1 = Matrix::identity(n);
        apply_q1(&form.qpanels, &mut q1);
        let mut p1 = Matrix::identity(n);
        apply_p1(&form.ppanels, &mut p1);
        assert!(norms::orthogonality(&q1) < 100.0, "Q1 not orthogonal");
        assert!(norms::orthogonality(&p1) < 100.0, "P1 not orthogonal");
        let recon = q1
            .multiply(&form.band.to_dense())
            .unwrap()
            .multiply(&p1.transpose())
            .unwrap();
        let tol = 200.0 * norms::norm1(&a) * n as f64 * norms::EPS;
        assert!(
            recon.approx_eq(&a, tol),
            "Q1 B P1^T != A (n={n}, b={b}), err {}",
            {
                let mut diff = recon.clone();
                for (x, y) in diff.as_mut_slice().iter_mut().zip(a.as_slice()) {
                    *x -= *y;
                }
                diff.max_abs()
            }
        );
    }

    #[test]
    fn exact_tiles() {
        check(24, 4, 1);
        check(32, 8, 2);
    }

    #[test]
    fn ragged_tail() {
        check(37, 5, 3);
        check(26, 8, 4);
    }

    #[test]
    fn band_wider_than_matrix() {
        check(6, 8, 5);
    }

    #[test]
    fn tiny() {
        check(1, 2, 6);
        check(2, 2, 7);
        check(3, 2, 8);
    }

    #[test]
    fn singular_values_preserved() {
        let n = 30;
        let b = 5;
        let a = rand_mat(n, 9);
        let form = ge2bb(&a, b, 3);
        let bd = form.band.to_dense();
        let want =
            tseig_kernels::reference::jacobi_eigen(&a.transpose().multiply(&a).unwrap(), false)
                .unwrap()
                .eigenvalues;
        let got =
            tseig_kernels::reference::jacobi_eigen(&bd.transpose().multiply(&bd).unwrap(), false)
                .unwrap()
                .eigenvalues;
        assert!(
            norms::eigenvalue_distance(&got, &want) < 1e-9,
            "stage 1 changed the singular values"
        );
    }

    #[test]
    fn flops_are_level3() {
        // The whole point of the two-stage form: stage 1 is gemm-bound
        // where the one-stage gebrd is gemv-bound.
        let n = 120;
        let a = rand_mat(n, 10);
        let (_, counts) = tseig_kernels::flops::measure(|| ge2bb(&a, 8, 0));
        let frac = counts.l3 as f64 / counts.total().max(1) as f64;
        assert!(frac > 0.90, "ge2bb L3 fraction {frac}");
    }
}
