//! SVD drivers at full-ladder parity with the eigensolvers.
//!
//! Two pipelines reach the same bidiagonal QR finish:
//!
//! * **one-stage** — `gebrd` (all `gemv`-bound, the paper's §4.1
//!   baseline), reflector back-transformation, `bdsqr`;
//! * **two-stage** — [`crate::stage1::ge2bb`] (BLAS-3 dense→band) then
//!   the [`crate::stage2`] bulge chase under a Serial/Static/Dynamic
//!   scheduler, back-transformation from the panel and chase reflector
//!   sets, `bdsqr`.
//!
//! Both run the same production ladder as the symmetric driver: input
//! screening with offender location, `DSYEV`-style safe scaling,
//! recovery rungs (scheduler fallback, `bdsqr` cap → eps-perturbed
//! retry) recorded in [`SolveDiagnostics`], and opt-in verification.

use crate::bdsqr::bdsqr_with;
use crate::stage1::{apply_p1, apply_q1, ge2bb_with};
use crate::stage2::{reduce_scheduled, BvSet, Stage2Exec, Stage2Ws};
use std::time::Duration;
use tseig_kernels::householder::larf_left;
use tseig_kernels::scaling::{safe_scale_factor, scale_matrix, screen_general};
use tseig_matrix::diagnostics::{Recorder, Recovery, SolveDiagnostics, VerifyLevel, VerifyReport};
use tseig_matrix::{Ctrl, Deadline, Error, Matrix, MemBudget, MemReq, Result};
use tseig_onestage::bidiagonal::gebrd;

/// Thin SVD of an `m x n` matrix (`m >= n`): `A = U diag(s) V^T` with
/// `U` `m x n`, `V` `n x n`, `s` descending non-negative.
#[derive(Debug)]
pub struct Svd {
    pub u: Matrix,
    pub s: Vec<f64>,
    pub v: Matrix,
    /// What the robustness ladder did on the way to the answer.
    pub diagnostics: SolveDiagnostics,
}

/// Pipeline selection for [`GeSvd`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SvdMethod {
    /// Two-stage for values-only solves on square matrices of order
    /// `>= two_stage_min_n`, one-stage otherwise. Vector solves stay
    /// one-stage: the chase back-transform applies its reflectors one
    /// at a time, and measured at n=1024 that cost still outweighs the
    /// BLAS-3 reduction win (see `BENCH_*_svd_two_stage.json`).
    #[default]
    Auto,
    /// Always the one-stage `gebrd` pipeline.
    OneStage,
    /// Always the two-stage pipeline (square input required).
    TwoStage,
}

/// Reusable buffers of the SVD driver, mirroring `SolvePlan`'s ownership
/// model: the dense working copy, the bidiagonal, the chase reflector
/// set and scratch, and the accumulation matrices all live here and are
/// reused across solves of the same shape instead of being reallocated
/// (the one-stage path used to `clone` the input silently on every
/// call).
#[derive(Default)]
pub struct SvdPlan {
    work: Matrix,
    ub: Matrix,
    vb: Matrix,
    bv: BvSet,
    ws: Stage2Ws,
    d: Vec<f64>,
    e: Vec<f64>,
    d0: Vec<f64>,
    e0: Vec<f64>,
}

impl SvdPlan {
    pub fn new() -> SvdPlan {
        SvdPlan::default()
    }

    /// Bytes of heap capacity currently retained.
    pub fn footprint_bytes(&self) -> usize {
        use std::mem::size_of;
        self.work.capacity_bytes()
            + self.ub.capacity_bytes()
            + self.vb.capacity_bytes()
            + self.bv.capacity_bytes()
            + self.ws.capacity_bytes()
            + (self.d.capacity() + self.e.capacity() + self.d0.capacity() + self.e0.capacity())
                * size_of::<f64>()
    }
}

/// Builder-style SVD driver (the `gesvd` role).
#[derive(Clone, Debug)]
pub struct GeSvd {
    nb: usize,
    ib: usize,
    method: SvdMethod,
    scheduler: Stage2Exec,
    vectors: bool,
    verify: VerifyLevel,
    two_stage_min_n: usize,
    ctrl: Ctrl,
}

impl Default for GeSvd {
    fn default() -> Self {
        GeSvd {
            nb: 32,
            ib: 0,
            method: SvdMethod::Auto,
            scheduler: Stage2Exec::Serial,
            vectors: true,
            verify: VerifyLevel::Off,
            two_stage_min_n: 768,
            ctrl: Ctrl::NONE,
        }
    }
}

impl GeSvd {
    pub fn new() -> Self {
        GeSvd::default()
    }

    /// Bandwidth of the two-stage reduction.
    pub fn nb(mut self, nb: usize) -> Self {
        self.nb = nb.max(2);
        self
    }

    /// Inner blocking of the stage-1 panel QR (0 = `nb`).
    pub fn ib(mut self, ib: usize) -> Self {
        self.ib = ib;
        self
    }

    /// Pipeline selection.
    pub fn method(mut self, m: SvdMethod) -> Self {
        self.method = m;
        self
    }

    /// Stage-2 scheduler for the two-stage path.
    pub fn scheduler(mut self, s: Stage2Exec) -> Self {
        self.scheduler = s;
        self
    }

    /// Compute singular vectors (default) or values only.
    pub fn vectors(mut self, want: bool) -> Self {
        self.vectors = want;
        self
    }

    /// Opt-in post-solve verification.
    pub fn verify(mut self, level: VerifyLevel) -> Self {
        self.verify = level;
        self
    }

    /// `Auto` routes values-only solves on square matrices of at least
    /// this order through the two-stage pipeline. The default (768) sits
    /// between the measured crossover bounds — one-stage still ahead at
    /// n=512, two-stage 1.4x ahead at n=1024 (see
    /// `BENCH_*_svd_two_stage.json`).
    pub fn two_stage_min_n(mut self, n: usize) -> Self {
        self.two_stage_min_n = n;
        self
    }

    /// Attach a request control (cancel token / deadline / heartbeat).
    /// Every long-running loop of the solve polls it at its phase
    /// boundary; an abort surfaces as `Error::Cancelled` or
    /// `Error::DeadlineExceeded` and leaves the plan valid for reuse.
    pub fn ctrl(mut self, ctrl: Ctrl) -> Self {
        self.ctrl = ctrl;
        self
    }

    /// The attached request control.
    pub fn control(&self) -> &Ctrl {
        &self.ctrl
    }

    /// Workspace requirement of [`Self::solve_with_plan`] for an
    /// `m x n` input under this configuration — the admission-control
    /// sizing used by [`SvdBatch::mem_budget`]. Pure arithmetic, no
    /// allocation.
    pub fn plan_req(&self, m: usize, n: usize) -> MemReq {
        let b = self.nb.max(2);
        MemReq::f64s(m * n) // dense working copy
            .and(MemReq::f64s(n * n).times(2)) // Ub / Vb accumulators
            .and(MemReq::f64s((3 * b + 2) * n)) // band form + bulge fill
            .and(MemReq::f64s(2 * n * (b + 1))) // chase reflector slots
            .and(MemReq::f64s(4 * n)) // bidiagonal + retry snapshot
    }

    /// Compute the SVD with internally-allocated buffers.
    pub fn solve(&self, a: &Matrix) -> Result<Svd> {
        let mut plan = SvdPlan::new();
        self.solve_with_plan(a, &mut plan)
    }

    /// Compute the SVD reusing a caller-owned [`SvdPlan`]'s buffers (the
    /// batch path: one plan per worker, warm after the first solve of a
    /// shape).
    pub fn solve_with_plan(&self, a: &Matrix, plan: &mut SvdPlan) -> Result<Svd> {
        let (m, n) = (a.rows(), a.cols());
        assert!(
            m >= n,
            "gesvd expects m >= n; factor the transpose otherwise"
        );
        if n == 0 {
            return Ok(Svd {
                u: Matrix::zeros(m, 0),
                s: vec![],
                v: Matrix::zeros(0, 0),
                diagnostics: SolveDiagnostics::default(),
            });
        }
        // Screening: every entry finite, with the offender located.
        let anorm = screen_general(a)?;
        // Admission boundary: a pre-cancelled or expired request aborts
        // before the working copy is touched, keeping the plan warm.
        self.ctrl.checkpoint()?;
        let rec = Recorder::new();
        // DSYEV-style safe scaling into [sqrt(smlnum), sqrt(bignum)].
        let sigma = safe_scale_factor(anorm);
        plan.work.copy_from(a);
        if let Some(s) = sigma {
            scale_matrix(&mut plan.work, s);
        }

        let two_stage = match self.method {
            SvdMethod::OneStage => false,
            SvdMethod::TwoStage => {
                assert_eq!(m, n, "two-stage SVD requires a square matrix");
                true
            }
            SvdMethod::Auto => {
                m == n && n >= self.two_stage_min_n && self.nb >= 2 && n > 2 && !self.vectors
            }
        };

        let mut out = if two_stage {
            self.solve_two_stage(plan, &rec)?
        } else {
            self.solve_one_stage(plan, &rec)?
        };

        // Undo the input scaling on the singular values.
        if let Some(s) = sigma {
            for v in &mut out.s {
                *v /= s;
            }
        }
        out.diagnostics = SolveDiagnostics::from_recorder(&rec);
        out.diagnostics.scaled_by = sigma;
        if self.verify != VerifyLevel::Off && self.vectors {
            use tseig_matrix::norms;
            let residual = svd_residual(a, &out);
            let orthogonality = if self.verify == VerifyLevel::Full {
                norms::orthogonality(&out.u).max(norms::orthogonality(&out.v))
            } else {
                0.0
            };
            out.diagnostics.verify = Some(VerifyReport {
                residual,
                orthogonality,
            });
        }
        Ok(out)
    }

    /// Run `bdsqr`, absorbing an iteration-cap failure with one
    /// eps-perturbed retry (recorded as a degradation).
    #[allow(clippy::too_many_arguments)]
    fn bdsqr_with_retry(
        &self,
        plan: &mut SvdPlan,
        rec: &Recorder,
        n: usize,
        with_vectors: bool,
    ) -> Result<()> {
        plan.d0.clear();
        plan.d0.extend_from_slice(&plan.d);
        plan.e0.clear();
        plan.e0.extend_from_slice(&plan.e);
        let reset_uv = |plan: &mut SvdPlan| {
            if with_vectors {
                plan.ub.reset_to(n, n);
                plan.vb.reset_to(n, n);
                for j in 0..n {
                    plan.ub[(j, j)] = 1.0;
                    plan.vb[(j, j)] = 1.0;
                }
            } else {
                plan.ub.reset_to(0, 0);
                plan.vb.reset_to(0, 0);
            }
        };
        reset_uv(plan);
        let first = {
            let SvdPlan { d, e, ub, vb, .. } = plan;
            let (u, v) = if with_vectors {
                (Some(&mut *ub), Some(&mut *vb))
            } else {
                (None, None)
            };
            bdsqr_with(d, e, u, v, &self.ctrl)
        };
        match first {
            Ok(()) => Ok(()),
            Err(Error::NoConvergence { index, .. }) => {
                // The sweep stalled (or the chaos site fired). Restore
                // the bidiagonal, nudge the superdiagonal at machine
                // precision to break the stall, and re-run once.
                rec.record(Recovery::BdsqrPerturbedRetry { index });
                plan.d.clear();
                plan.d.extend_from_slice(&plan.d0);
                plan.e.clear();
                plan.e.extend_from_slice(&plan.e0);
                for v in plan.e.iter_mut() {
                    *v *= 1.0 - 4.0 * f64::EPSILON;
                }
                reset_uv(plan);
                let SvdPlan { d, e, ub, vb, .. } = plan;
                let (u, v) = if with_vectors {
                    (Some(&mut *ub), Some(&mut *vb))
                } else {
                    (None, None)
                };
                bdsqr_with(d, e, u, v, &self.ctrl)
            }
            Err(e) => Err(e),
        }
    }

    /// Two-stage pipeline on the (square, pre-scaled) working copy.
    fn solve_two_stage(&self, plan: &mut SvdPlan, rec: &Recorder) -> Result<Svd> {
        let n = plan.work.rows();
        let form = ge2bb_with(&plan.work, self.nb, self.ib, &self.ctrl)?;
        // Scheduled bulge chase, with the serial path as recovery rung.
        let chase = match reduce_scheduled(clone_band(&form.band), self.scheduler, &self.ctrl) {
            Ok(c) => c,
            Err(e) => {
                // A cancel or expired deadline drains the pool and lands
                // here as the poll-stop string; re-checkpoint so it
                // surfaces structurally instead of as a serial rerun.
                self.ctrl.checkpoint()?;
                rec.record(Recovery::SchedulerFallback { error: e });
                crate::stage2::reduce(clone_band(&form.band))
            }
        };
        plan.d.clear();
        plan.d.extend_from_slice(&chase.d);
        plan.e.clear();
        plan.e.extend_from_slice(&chase.e);
        self.bdsqr_with_retry(plan, rec, n, self.vectors)?;
        if !self.vectors {
            return Ok(Svd {
                u: Matrix::zeros(n, 0),
                s: plan.d.clone(),
                v: Matrix::zeros(n, 0),
                diagnostics: SolveDiagnostics::default(),
            });
        }
        // U = Q1 (L_chase Ub), V = P1 (R_chase Vb).
        self.ctrl.checkpoint()?;
        let mut u = plan.ub.clone();
        chase.bv.apply_left(&mut u);
        apply_q1(&form.qpanels, &mut u);
        let mut v = plan.vb.clone();
        chase.bv.apply_right(&mut v);
        apply_p1(&form.ppanels, &mut v);
        Ok(Svd {
            u,
            s: plan.d.clone(),
            v,
            diagnostics: SolveDiagnostics::default(),
        })
    }

    /// One-stage pipeline on the (pre-scaled) working copy.
    fn solve_one_stage(&self, plan: &mut SvdPlan, rec: &Recorder) -> Result<Svd> {
        let (m, n) = (plan.work.rows(), plan.work.cols());
        self.ctrl.checkpoint()?;
        let (tauq, taup, d, e) = gebrd(&mut plan.work);
        plan.d = d;
        plan.e = e;
        self.bdsqr_with_retry(plan, rec, n, self.vectors)?;
        if !self.vectors {
            return Ok(Svd {
                u: Matrix::zeros(m, 0),
                s: plan.d.clone(),
                v: Matrix::zeros(n, 0),
                diagnostics: SolveDiagnostics::default(),
            });
        }
        self.ctrl.checkpoint()?;
        let fac = &plan.work;
        // U = Q * [Ub; 0]  (Q = H_0 H_1 ... from the left reflectors).
        let mut u = Matrix::zeros(m, n);
        u.set_sub_matrix(0, 0, &plan.ub);
        let lda = fac.ld();
        let mut work = vec![0.0f64; n.max(m)];
        let mut uvec = vec![0.0f64; m];
        for j in (0..n).rev() {
            if tauq[j] == 0.0 {
                continue;
            }
            let rows = m - j;
            uvec[0] = 1.0;
            for (r, uv) in uvec[1..rows].iter_mut().enumerate() {
                *uv = fac.as_slice()[j + 1 + r + j * lda];
            }
            let ldu = u.ld();
            larf_left(
                &uvec[..rows],
                tauq[j],
                rows,
                n,
                &mut u.as_mut_slice()[j..],
                ldu,
                &mut work,
            );
        }
        // V = P * Vb  (P = G_0 G_1 ...; right reflector j acts on rows
        // j+1..n of V, tail stored in row j of the factored matrix).
        let mut v = plan.vb.clone();
        for j in (0..n.saturating_sub(1)).rev() {
            if taup[j] == 0.0 {
                continue;
            }
            let len = n - j - 1;
            uvec[0] = 1.0;
            for c in 1..len {
                uvec[c] = fac[(j, j + 1 + c)];
            }
            let ldv = v.ld();
            larf_left(
                &uvec[..len],
                taup[j],
                len,
                n,
                &mut v.as_mut_slice()[j + 1..],
                ldv,
                &mut work,
            );
        }
        Ok(Svd {
            u,
            s: plan.d.clone(),
            v,
            diagnostics: SolveDiagnostics::default(),
        })
    }
}

/// Deep copy of a band matrix (the chase consumes its input; the
/// recovery rung needs a pristine one).
fn clone_band(band: &tseig_matrix::GeBandMatrix) -> tseig_matrix::GeBandMatrix {
    let mut c = tseig_matrix::GeBandMatrix::zeros(band.n(), band.kl(), band.ku());
    c.as_mut_slice().copy_from_slice(band.as_slice());
    c
}

/// Worker pool streaming many SVD requests through per-worker
/// [`SvdPlan`]s — the SVD face of `tseig-core`'s `BatchDriver`, with the
/// same guarantees: `results[i]` corresponds to `inputs[i]`, and a
/// request that fails (screening, non-convergence, even a panicking
/// kernel) produces an `Err` in its own slot while the rest of the
/// batch completes.
#[derive(Clone, Debug)]
pub struct SvdBatch {
    gesvd: GeSvd,
    threads: usize,
    deadline: Option<Duration>,
    batch_deadline: Option<Duration>,
    mem_budget: Option<MemBudget>,
}

impl SvdBatch {
    /// Batch over the given driver configuration; workers default to the
    /// machine's available parallelism.
    pub fn new(gesvd: GeSvd) -> SvdBatch {
        SvdBatch {
            gesvd,
            threads: 0,
            deadline: None,
            batch_deadline: None,
            mem_budget: None,
        }
    }

    /// Number of concurrent workers (`0` = available parallelism, `1` =
    /// one worker streaming the whole batch through one plan).
    pub fn threads(mut self, t: usize) -> SvdBatch {
        self.threads = t;
        self
    }

    /// Per-request wall-clock budget: each solve gets a fresh deadline
    /// of `d`, and an overrun aborts that request alone with
    /// `Error::DeadlineExceeded` (the sibling requests are unaffected).
    pub fn deadline(mut self, d: Duration) -> SvdBatch {
        self.deadline = Some(d);
        self
    }

    /// Whole-batch wall-clock budget, queue-time aware: a request
    /// claimed with the batch budget already spent fails at admission,
    /// and a claimed request's effective deadline never extends past
    /// what remains of the batch budget.
    pub fn batch_deadline(mut self, d: Duration) -> SvdBatch {
        self.batch_deadline = Some(d);
        self
    }

    /// Memory admission ceiling, checked against
    /// [`GeSvd::plan_req`] sizing before any allocation for the
    /// request: an oversized input fails with `Error::BudgetExceeded`
    /// without disturbing the worker's warm plan.
    pub fn mem_budget(mut self, b: MemBudget) -> SvdBatch {
        self.mem_budget = Some(b);
        self
    }

    /// Admission decision for one `m x n` request under the configured
    /// memory budget. Pure arithmetic — performs no allocation.
    pub fn admit(&self, m: usize, n: usize) -> Result<()> {
        match self.mem_budget {
            Some(b) => b.admit(self.gesvd.plan_req(m, n).total_bytes()),
            None => Ok(()),
        }
    }

    /// Per-request driver under the governance knobs: admission check,
    /// then the base configuration with the effective deadline
    /// (min of per-request budget and the batch budget's remainder)
    /// attached on top of any caller-supplied control.
    fn request_driver(&self, a: &Matrix, batch: Option<&Deadline>) -> Result<GeSvd> {
        self.admit(a.rows(), a.cols())?;
        if let Some(bd) = batch {
            if bd.expired() {
                return Err(Error::DeadlineExceeded {
                    elapsed: bd.elapsed(),
                    budget: bd.budget(),
                });
            }
        }
        let budget = match (self.deadline, batch) {
            (Some(p), Some(bd)) => Some(p.min(bd.remaining())),
            (Some(p), None) => Some(p),
            (None, Some(bd)) => Some(bd.remaining()),
            (None, None) => None,
        };
        let mut gesvd = self.gesvd.clone();
        if let Some(budget) = budget {
            let ctrl = gesvd.control().clone().with_deadline(Deadline::new(budget));
            gesvd = gesvd.ctrl(ctrl);
        }
        Ok(gesvd)
    }

    /// Factor every input (each `m x n` with `m >= n`).
    pub fn solve_all(&self, inputs: &[Matrix]) -> Vec<Result<Svd>> {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;
        let batch = self.batch_deadline.map(Deadline::new);
        let solve_one = |a: &Matrix, plan: &mut SvdPlan| -> Result<Svd> {
            let gesvd = self.request_driver(a, batch.as_ref())?;
            match catch_unwind(AssertUnwindSafe(|| gesvd.solve_with_plan(a, plan))) {
                Ok(r) => r,
                Err(payload) => {
                    // The plan may hold partially-written state after the
                    // unwind; rebuild it.
                    *plan = SvdPlan::new();
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".into());
                    Err(Error::Runtime(format!("svd panicked: {msg}")))
                }
            }
        };
        let workers = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
        .clamp(1, inputs.len().max(1));
        if workers <= 1 {
            let mut plan = SvdPlan::new();
            return inputs.iter().map(|a| solve_one(a, &mut plan)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<Svd>>>> =
            (0..inputs.len()).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    let mut plan = SvdPlan::new();
                    // tidy: allow(checkpoint-loop) -- governance runs per claim (request_driver); the solve polls its own ctrl
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= inputs.len() {
                            break;
                        }
                        let r = solve_one(&inputs[i], &mut plan);
                        *slots[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(r);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(|p| p.into_inner())
                    .unwrap_or_else(|| {
                        Err(Error::Runtime(
                            "worker exited before writing its result slot".to_string(),
                        ))
                    })
            })
            .collect()
    }
}

/// Compute the thin SVD with default options (full vectors, auto
/// pipeline). For `m < n`, pass the transpose and swap `u`/`v`.
pub fn gesvd(a: &Matrix) -> Result<Svd> {
    GeSvd::new().solve(a)
}

/// Scaled SVD residual `||A - U S V^T||_max / (||A||_1 max(m,n) eps)`.
pub fn svd_residual(a: &Matrix, svd: &Svd) -> f64 {
    use tseig_matrix::norms;
    let n = svd.s.len();
    let mut us = svd.u.clone();
    for j in 0..n {
        let col = us.col_mut(j);
        for val in col.iter_mut() {
            *val *= svd.s[j];
        }
    }
    let recon = us.multiply(&svd.v.transpose()).expect("shapes");
    let mut diff = 0.0f64;
    for (x, y) in recon.as_slice().iter().zip(a.as_slice()) {
        diff = diff.max((x - y).abs());
    }
    diff / (norms::norm1(a).max(norms::EPS) * a.rows().max(a.cols()) as f64 * norms::EPS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tseig_matrix::{gen, norms};

    fn rand_mat(m: usize, n: usize, seed: u64) -> Matrix {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0))
    }

    fn oracle_svals(a: &Matrix) -> Vec<f64> {
        let ata = a.transpose().multiply(a).unwrap();
        let mut v: Vec<f64> = tseig_kernels::reference::jacobi_eigen(&ata, false)
            .unwrap()
            .eigenvalues
            .iter()
            .map(|x| x.max(0.0).sqrt())
            .collect();
        v.reverse();
        v
    }

    fn check(a: &Matrix, tag: &str) {
        let svd = gesvd(a).unwrap();
        let want = oracle_svals(a);
        assert!(
            norms::eigenvalue_distance(&svd.s, &want) < 1e-9,
            "{tag}: singular values\n got {:?}\nwant {want:?}",
            svd.s
        );
        assert!(
            svd_residual(a, &svd) < 500.0,
            "{tag}: residual {}",
            svd_residual(a, &svd)
        );
        assert!(norms::orthogonality(&svd.u) < 200.0, "{tag}: U");
        assert!(norms::orthogonality(&svd.v) < 200.0, "{tag}: V");
    }

    #[test]
    fn square_random() {
        check(&rand_mat(20, 20, 100), "square20");
        check(&rand_mat(33, 33, 101), "square33");
    }

    #[test]
    fn batch_matches_one_at_a_time_and_isolates_failures() {
        let mut inputs: Vec<Matrix> = (0..5)
            .map(|s| rand_mat(18 + 2 * (s % 2), 14, 700 + s as u64))
            .collect();
        inputs[3][(4, 4)] = f64::NAN;
        let driver = GeSvd::new().nb(4);
        let sequential: Vec<_> = inputs.iter().map(|a| driver.solve(a)).collect();
        for threads in [1, 3] {
            let batch = SvdBatch::new(driver.clone())
                .threads(threads)
                .solve_all(&inputs);
            for (i, (b, s)) in batch.iter().zip(&sequential).enumerate() {
                match (b, s) {
                    (Ok(b), Ok(s)) => {
                        assert_eq!(b.s, s.s, "request {i}");
                        assert_eq!(b.u.as_slice(), s.u.as_slice(), "request {i}");
                    }
                    (Err(_), Err(_)) => assert_eq!(i, 3, "only the poisoned request fails"),
                    _ => panic!("request {i}: batch/sequential outcome mismatch"),
                }
            }
        }
    }

    #[test]
    fn cancel_then_resolve_on_same_plan_is_bitwise() {
        // A cancelled request must leave the plan valid: re-solving on
        // the same plan with the cancel cleared is bitwise identical to
        // a fresh ungoverned solve, under every scheduler.
        use tseig_matrix::CancelToken;
        let a = rand_mat(24, 24, 900);
        for sched in [
            Stage2Exec::Serial,
            Stage2Exec::Static(3),
            Stage2Exec::Dynamic(4),
        ] {
            let drv = GeSvd::new()
                .method(SvdMethod::TwoStage)
                .nb(4)
                .scheduler(sched);
            let fresh = drv.solve(&a).unwrap();
            let mut plan = SvdPlan::new();
            // Warm the plan, then cancel a request against it.
            drv.solve_with_plan(&a, &mut plan).unwrap();
            let pre = CancelToken::new();
            pre.cancel();
            let governed = drv.clone().ctrl(Ctrl::new().with_cancel(pre));
            match governed.solve_with_plan(&a, &mut plan) {
                Err(Error::Cancelled) => {}
                other => panic!("{sched:?}: expected Cancelled, got {other:?}"),
            }
            let resolved = drv.solve_with_plan(&a, &mut plan).unwrap();
            assert_eq!(resolved.s, fresh.s, "{sched:?}: singular values");
            assert_eq!(resolved.u.as_slice(), fresh.u.as_slice(), "{sched:?}: U");
            assert_eq!(resolved.v.as_slice(), fresh.v.as_slice(), "{sched:?}: V");
        }
    }

    #[test]
    fn batch_admission_rejects_only_the_oversized_request() {
        // MemBudget admission is per request: the oversized input fails
        // with the structured need/limit pair before any allocation,
        // siblings are bitwise identical to an ungoverned run.
        let small = 12usize;
        let inputs = vec![
            rand_mat(small, small, 910),
            rand_mat(4 * small, 4 * small, 911),
            rand_mat(small, small, 912),
        ];
        let driver = GeSvd::new().nb(4);
        let limit = driver.plan_req(small, small).total_bytes();
        let plain = SvdBatch::new(driver.clone()).threads(1).solve_all(&inputs);
        for threads in [1, 2] {
            let governed = SvdBatch::new(driver.clone())
                .threads(threads)
                .mem_budget(MemBudget::bytes(limit))
                .solve_all(&inputs);
            for (i, r) in governed.iter().enumerate() {
                if i == 1 {
                    match r {
                        Err(Error::BudgetExceeded { need, limit: l }) => {
                            assert!(*need > *l, "need {need} <= limit {l}");
                        }
                        other => panic!("expected BudgetExceeded, got {other:?}"),
                    }
                } else {
                    let (g, p) = (r.as_ref().unwrap(), plain[i].as_ref().unwrap());
                    assert_eq!(g.s, p.s, "request {i}");
                    assert_eq!(g.u.as_slice(), p.u.as_slice(), "request {i}");
                }
            }
        }
    }

    #[test]
    fn zero_batch_deadline_fails_every_request_structurally() {
        let inputs: Vec<Matrix> = (0..3).map(|s| rand_mat(10, 10, 920 + s)).collect();
        let out = SvdBatch::new(GeSvd::new().nb(4))
            .threads(2)
            .batch_deadline(Duration::ZERO)
            .solve_all(&inputs);
        assert!(out
            .iter()
            .all(|r| matches!(r, Err(Error::DeadlineExceeded { .. }))));
    }

    #[test]
    fn tall_random() {
        check(&rand_mat(30, 12, 102), "tall30x12");
        check(&rand_mat(25, 24, 103), "tall25x24");
    }

    #[test]
    fn two_stage_matches_one_stage() {
        for (n, nb, seed) in [(24, 4, 108), (37, 5, 109), (48, 8, 110)] {
            let a = rand_mat(n, n, seed);
            let one = GeSvd::new().method(SvdMethod::OneStage).solve(&a).unwrap();
            for sched in [
                Stage2Exec::Serial,
                Stage2Exec::Static(3),
                Stage2Exec::Dynamic(4),
            ] {
                let two = GeSvd::new()
                    .method(SvdMethod::TwoStage)
                    .nb(nb)
                    .scheduler(sched)
                    .solve(&a)
                    .unwrap();
                assert!(
                    norms::eigenvalue_distance(&one.s, &two.s) < 1e-9,
                    "n={n} nb={nb} {sched:?}: singular values disagree"
                );
                assert!(
                    svd_residual(&a, &two) < 500.0,
                    "n={n} nb={nb} {sched:?}: two-stage residual {}",
                    svd_residual(&a, &two)
                );
                assert!(norms::orthogonality(&two.u) < 200.0);
                assert!(norms::orthogonality(&two.v) < 200.0);
            }
        }
    }

    #[test]
    fn two_stage_reconstruction_bound() {
        // U Sigma V^T must reconstruct A to the same scaled bound on
        // both pipelines.
        let n = 40;
        let a = rand_mat(n, n, 111);
        let one = GeSvd::new().method(SvdMethod::OneStage).solve(&a).unwrap();
        let two = GeSvd::new()
            .method(SvdMethod::TwoStage)
            .nb(6)
            .solve(&a)
            .unwrap();
        let r1 = svd_residual(&a, &one);
        let r2 = svd_residual(&a, &two);
        assert!(r1 < 500.0 && r2 < 500.0, "residuals {r1} {r2}");
    }

    #[test]
    fn values_only_skips_vectors() {
        let a = rand_mat(26, 26, 112);
        let full = gesvd(&a).unwrap();
        let vals = GeSvd::new()
            .method(SvdMethod::TwoStage)
            .nb(4)
            .vectors(false)
            .solve(&a)
            .unwrap();
        assert_eq!(vals.u.cols(), 0);
        assert!(norms::eigenvalue_distance(&full.s, &vals.s) < 1e-10);
    }

    #[test]
    fn screening_rejects_nan_with_location() {
        let mut a = rand_mat(8, 8, 113);
        a[(5, 2)] = f64::NAN;
        match gesvd(&a) {
            Err(Error::InvalidData { row: 5, col: 2, .. }) => {}
            other => panic!("wrong screening result: {other:?}"),
        }
    }

    #[test]
    fn extreme_scaling_recovered() {
        // Norm far outside the safe window: the driver scales in, solves,
        // and rescales the singular values back.
        let n = 12;
        let a0 = rand_mat(n, n, 114);
        let mut a = a0.clone();
        scale_matrix(&mut a, 1e-290);
        let svd = gesvd(&a).unwrap();
        assert!(svd.diagnostics.scaled_by.is_some());
        let want = oracle_svals(&a0);
        let got: Vec<f64> = svd.s.iter().map(|s| s * 1e290).collect();
        assert!(
            norms::eigenvalue_distance(&got, &want) < 1e-6,
            "rescaled singular values off:\n got {got:?}\nwant {want:?}"
        );
    }

    #[test]
    fn verify_populates_report() {
        let a = rand_mat(16, 16, 115);
        let svd = GeSvd::new().verify(VerifyLevel::Full).solve(&a).unwrap();
        let rep = svd.diagnostics.verify.expect("verify requested");
        assert!(rep.residual < 500.0 && rep.orthogonality < 200.0);
    }

    #[test]
    fn plan_reuse_matches_fresh() {
        let mut plan = SvdPlan::new();
        let drv = GeSvd::new().method(SvdMethod::TwoStage).nb(4);
        for seed in [116, 117, 118] {
            let a = rand_mat(21, 21, seed);
            let with_plan = drv.solve_with_plan(&a, &mut plan).unwrap();
            let fresh = drv.solve(&a).unwrap();
            assert_eq!(with_plan.s, fresh.s, "plan reuse changed the result");
        }
        assert!(plan.footprint_bytes() > 0);
    }

    #[test]
    fn rank_deficient() {
        // Outer product: rank 2.
        let x = rand_mat(18, 2, 104);
        let y = rand_mat(12, 2, 105);
        let a = x.multiply(&y.transpose()).unwrap();
        let svd = gesvd(&a).unwrap();
        assert!(
            svd.s[2] < 1e-10 * svd.s[0].max(1.0),
            "rank not detected: {:?}",
            svd.s
        );
        assert!(svd_residual(&a, &svd) < 500.0);
    }

    #[test]
    fn known_singular_values() {
        // diag(5, 3, 1) embedded: exact singular values.
        let mut a = Matrix::zeros(5, 3);
        a[(0, 0)] = 5.0;
        a[(1, 1)] = -3.0; // sign flips into U
        a[(2, 2)] = 1.0;
        let svd = gesvd(&a).unwrap();
        assert!((svd.s[0] - 5.0).abs() < 1e-12);
        assert!((svd.s[1] - 3.0).abs() < 1e-12);
        assert!((svd.s[2] - 1.0).abs() < 1e-12);
        assert!(svd_residual(&a, &svd) < 100.0);
    }

    #[test]
    fn section_4_1_flop_ratio() {
        // Paper §4.1: the SVD bidiagonalization costs ~2x the symmetric
        // tridiagonalization (8/3 vs 4/3 n^3) — verify by counters.
        let n = 120;
        let a = gen::random_symmetric(n, 106);
        let (_, c_brd) = tseig_kernels::flops::measure(|| {
            let mut m = a.clone();
            tseig_onestage::bidiagonal::gebrd(&mut m)
        });
        let (_, c_trd) =
            tseig_kernels::flops::measure(|| tseig_onestage::sytrd::sytrd(a.clone(), 32));
        let ratio = c_brd.total() as f64 / c_trd.total() as f64;
        assert!((1.4..2.6).contains(&ratio), "BRD/TRD flop ratio {ratio}");
    }

    #[test]
    fn empty_and_single_column() {
        let a = Matrix::zeros(4, 0);
        let svd = gesvd(&a).unwrap();
        assert!(svd.s.is_empty());
        let a = rand_mat(6, 1, 107);
        let svd = gesvd(&a).unwrap();
        let want: f64 = a.as_slice().iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((svd.s[0] - want).abs() < 1e-12);
    }
}
