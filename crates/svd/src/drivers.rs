//! SVD drivers: `gesvd = gebrd + back-transform + bdsqr`.
//!
//! One-stage pipeline, the exact shape the paper's §4.1 analyzes:
//! `8/3 n^3` memory-bound bidiagonalization, then the bidiagonal QR with
//! accumulated rotations, then reflector back-transformation of both
//! singular-vector sets (`4 n^3 + 4 n^3` for full vectors).

use crate::bdsqr::bdsqr;
use tseig_kernels::householder::larf_left;
use tseig_matrix::{Matrix, Result};
use tseig_onestage::bidiagonal::gebrd;

/// Thin SVD of an `m x n` matrix (`m >= n`): `A = U diag(s) V^T` with
/// `U` `m x n`, `V` `n x n`, `s` descending non-negative.
pub struct Svd {
    pub u: Matrix,
    pub s: Vec<f64>,
    pub v: Matrix,
}

/// Compute the thin SVD. For `m < n`, pass the transpose and swap
/// `u`/`v`.
pub fn gesvd(a: &Matrix) -> Result<Svd> {
    let (m, n) = (a.rows(), a.cols());
    assert!(
        m >= n,
        "gesvd expects m >= n; factor the transpose otherwise"
    );
    if n == 0 {
        return Ok(Svd {
            u: Matrix::zeros(m, 0),
            s: vec![],
            v: Matrix::zeros(0, 0),
        });
    }
    let mut fac = a.clone();
    let (tauq, taup, mut d, mut e) = gebrd(&mut fac);

    // Bidiagonal SVD with accumulated rotations.
    let mut ub = Matrix::identity(n);
    let mut vb = Matrix::identity(n);
    bdsqr(&mut d, &mut e, Some(&mut ub), Some(&mut vb))?;

    // U = Q * [Ub; 0]  (Q = H_0 H_1 ... from the left reflectors).
    let mut u = Matrix::zeros(m, n);
    u.set_sub_matrix(0, 0, &ub);
    let lda = fac.ld();
    let mut work = vec![0.0f64; n.max(m)];
    let mut uvec = vec![0.0f64; m];
    for j in (0..n).rev() {
        if tauq[j] == 0.0 {
            continue;
        }
        let rows = m - j;
        uvec[0] = 1.0;
        for (r, uv) in uvec[1..rows].iter_mut().enumerate() {
            *uv = fac.as_slice()[j + 1 + r + j * lda];
        }
        let ldu = u.ld();
        larf_left(
            &uvec[..rows],
            tauq[j],
            rows,
            n,
            &mut u.as_mut_slice()[j..],
            ldu,
            &mut work,
        );
    }

    // V = P * Vb  (P = G_0 G_1 ...; right reflector j acts on rows
    // j+1..n of V, tail stored in row j of the factored matrix).
    let mut v = vb;
    for j in (0..n.saturating_sub(1)).rev() {
        if taup[j] == 0.0 {
            continue;
        }
        let len = n - j - 1;
        uvec[0] = 1.0;
        for c in 1..len {
            uvec[c] = fac[(j, j + 1 + c)];
        }
        let ldv = v.ld();
        larf_left(
            &uvec[..len],
            taup[j],
            len,
            n,
            &mut v.as_mut_slice()[j + 1..],
            ldv,
            &mut work,
        );
    }

    Ok(Svd { u, s: d, v })
}

/// Scaled SVD residual `||A - U S V^T||_max / (||A||_1 max(m,n) eps)`.
pub fn svd_residual(a: &Matrix, svd: &Svd) -> f64 {
    use tseig_matrix::norms;
    let n = svd.s.len();
    let mut us = svd.u.clone();
    for j in 0..n {
        let col = us.col_mut(j);
        for val in col.iter_mut() {
            *val *= svd.s[j];
        }
    }
    let recon = us.multiply(&svd.v.transpose()).expect("shapes");
    let mut diff = 0.0f64;
    for (x, y) in recon.as_slice().iter().zip(a.as_slice()) {
        diff = diff.max((x - y).abs());
    }
    diff / (norms::norm1(a).max(norms::EPS) * a.rows().max(a.cols()) as f64 * norms::EPS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tseig_matrix::{gen, norms};

    fn rand_mat(m: usize, n: usize, seed: u64) -> Matrix {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0))
    }

    fn oracle_svals(a: &Matrix) -> Vec<f64> {
        let ata = a.transpose().multiply(a).unwrap();
        let mut v: Vec<f64> = tseig_kernels::reference::jacobi_eigen(&ata, false)
            .unwrap()
            .eigenvalues
            .iter()
            .map(|x| x.max(0.0).sqrt())
            .collect();
        v.reverse();
        v
    }

    fn check(a: &Matrix, tag: &str) {
        let svd = gesvd(a).unwrap();
        let want = oracle_svals(a);
        assert!(
            norms::eigenvalue_distance(&svd.s, &want) < 1e-9,
            "{tag}: singular values\n got {:?}\nwant {want:?}",
            svd.s
        );
        assert!(
            svd_residual(a, &svd) < 500.0,
            "{tag}: residual {}",
            svd_residual(a, &svd)
        );
        assert!(norms::orthogonality(&svd.u) < 200.0, "{tag}: U");
        assert!(norms::orthogonality(&svd.v) < 200.0, "{tag}: V");
    }

    #[test]
    fn square_random() {
        check(&rand_mat(20, 20, 100), "square20");
        check(&rand_mat(33, 33, 101), "square33");
    }

    #[test]
    fn tall_random() {
        check(&rand_mat(30, 12, 102), "tall30x12");
        check(&rand_mat(25, 24, 103), "tall25x24");
    }

    #[test]
    fn rank_deficient() {
        // Outer product: rank 2.
        let x = rand_mat(18, 2, 104);
        let y = rand_mat(12, 2, 105);
        let a = x.multiply(&y.transpose()).unwrap();
        let svd = gesvd(&a).unwrap();
        assert!(
            svd.s[2] < 1e-10 * svd.s[0].max(1.0),
            "rank not detected: {:?}",
            svd.s
        );
        assert!(svd_residual(&a, &svd) < 500.0);
    }

    #[test]
    fn known_singular_values() {
        // diag(5, 3, 1) embedded: exact singular values.
        let mut a = Matrix::zeros(5, 3);
        a[(0, 0)] = 5.0;
        a[(1, 1)] = -3.0; // sign flips into U
        a[(2, 2)] = 1.0;
        let svd = gesvd(&a).unwrap();
        assert!((svd.s[0] - 5.0).abs() < 1e-12);
        assert!((svd.s[1] - 3.0).abs() < 1e-12);
        assert!((svd.s[2] - 1.0).abs() < 1e-12);
        assert!(svd_residual(&a, &svd) < 100.0);
    }

    #[test]
    fn section_4_1_flop_ratio() {
        // Paper §4.1: the SVD bidiagonalization costs ~2x the symmetric
        // tridiagonalization (8/3 vs 4/3 n^3) — verify by counters.
        let n = 120;
        let a = gen::random_symmetric(n, 106);
        let (_, c_brd) = tseig_kernels::flops::measure(|| {
            let mut m = a.clone();
            tseig_onestage::bidiagonal::gebrd(&mut m)
        });
        let (_, c_trd) =
            tseig_kernels::flops::measure(|| tseig_onestage::sytrd::sytrd(a.clone(), 32));
        let ratio = c_brd.total() as f64 / c_trd.total() as f64;
        assert!((1.4..2.6).contains(&ratio), "BRD/TRD flop ratio {ratio}");
    }

    #[test]
    fn empty_and_single_column() {
        let a = Matrix::zeros(4, 0);
        let svd = gesvd(&a).unwrap();
        assert!(svd.s.is_empty());
        let a = rand_mat(6, 1, 107);
        let svd = gesvd(&a).unwrap();
        let want: f64 = a.as_slice().iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((svd.s[0] - want).abs() < 1e-12);
    }
}
