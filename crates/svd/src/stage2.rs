//! Stage 2 of the two-stage SVD: band to bidiagonal bulge chase.
//!
//! The general-band counterpart of `tseig-core`'s symmetric chase. The
//! input is the upper-triangular band produced by [`crate::stage1::ge2bb`]
//! (bandwidth `b`, stored in a [`GeBandMatrix`] with `kl = b` and
//! `ku = 2b` so bulge fill never leaves the store); the output is the
//! upper bidiagonal `(d, e)` plus the full set of chase reflectors for
//! the `U`/`V` back-transformation.
//!
//! Each sweep `s` eliminates row `s` beyond the superdiagonal and chases
//! the resulting bulge off the bottom-right corner:
//!
//! * task `(s, 0)` — `gbelr`: a *right* reflector over columns
//!   `s+1 ..= min(s+b, n-1)` annihilates row `s` past the superdiagonal;
//!   applying it to the rows below fills a `b`-wide block under the
//!   diagonal.
//! * task `(s, k >= 1)` — `gbcle+gbelr`: a *left* reflector over rows
//!   `a ..= r_k` (`a = s+1+(k-1)b`, `r_k = min(s+kb, n-1)`) annihilates
//!   the fill in column `a` below the diagonal; applying it to the
//!   trailing columns pushes the bulge right, and a second *right*
//!   reflector over columns `a+b ..= r_{k+1}` pushes it down. Unlike the
//!   symmetric chase, every task annihilates fill its *predecessor's*
//!   applications fully materialized, so tasks never read each other's
//!   reflectors — ordering comes from band-interval overlap alone.
//!
//! The task set, its exact interval footprints, and the owner map are
//! exported ([`chase_task_specs`], [`chase_task_owners`]) so
//! `xtask graphcheck` certifies the graph race-free over the same sweep
//! as the symmetric builders, and the same specs drive the Serial /
//! Static / Dynamic schedulers of [`reduce_scheduled`].

use std::sync::Arc;

use tseig_kernels::contract;
use tseig_kernels::flops::{add, add_bytes, Level};
use tseig_kernels::householder::{larf_left, larf_right, larfg};
use tseig_matrix::workspace::{reset_f64s, MemReq};
use tseig_matrix::{Ctrl, GeBandMatrix, Matrix};
use tseig_runtime::verify::TaskSpec;
use tseig_runtime::{
    shadow, Access, DataCell, Priority, Region, Runtime, StaticSchedule, TaskGraph,
};

/// One `(sweep, step)` reflector slot: the optional left reflector
/// (absent for step 0) and the optional right reflector (absent when the
/// bulge has already reached the border). A reflector acts on the
/// contiguous index range `start .. start + v.len()` with an explicit
/// leading 1 in `v[0]`.
#[derive(Clone, Debug, Default)]
pub struct BvSlot {
    /// Left reflector row origin.
    pub l0: usize,
    /// Left reflector scalar.
    pub ltau: f64,
    /// Left reflector vector (empty = absent).
    pub lv: Vec<f64>,
    /// Right reflector column origin.
    pub r0: usize,
    /// Right reflector scalar.
    pub rtau: f64,
    /// Right reflector vector (empty = absent).
    pub rv: Vec<f64>,
}

/// The full set of stage-2 chase reflectors, indexed `[sweep][step]`.
/// Storage is retained across [`reset`](BvSet::reset)s at the same shape
/// so a warmed-up plan refills it without touching the allocator.
#[derive(Debug, Default)]
pub struct BvSet {
    n: usize,
    b: usize,
    sweeps: Vec<Vec<BvSlot>>,
}

impl BvSet {
    /// Fresh set for an order-`n`, bandwidth-`b` chase.
    pub fn new(n: usize, b: usize) -> BvSet {
        let mut set = BvSet::default();
        set.reset(n, b);
        set
    }

    /// Number of tasks in sweep `s` (0 when the sweep is empty). Sweep
    /// `s` exists while row `s` has entries past the superdiagonal, and
    /// runs one head task plus one chase task per `b` columns of fill.
    pub fn steps_of_sweep(n: usize, b: usize, s: usize) -> usize {
        if n <= 2 || b <= 1 || s + 2 >= n {
            0
        } else {
            (n - 3 - s) / b + 2
        }
    }

    /// Matrix order this set was shaped for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bandwidth this set was shaped for.
    pub fn bandwidth(&self) -> usize {
        self.b
    }

    /// Reshape for an `(n, b)` chase, clearing every slot but keeping
    /// buffer capacity (allocation-free once warm at a fixed shape).
    pub fn reset(&mut self, n: usize, b: usize) {
        self.n = n;
        self.b = b;
        let ns = if n > 2 && b > 1 { n - 2 } else { 0 };
        self.sweeps.truncate(ns);
        // tidy: allow(checkpoint-loop) -- workspace reshaping, no solver iteration
        while self.sweeps.len() < ns {
            self.sweeps.push(Vec::new());
        }
        for (s, sweep) in self.sweeps.iter_mut().enumerate() {
            let steps = BvSet::steps_of_sweep(n, b, s);
            sweep.truncate(steps);
            // tidy: allow(checkpoint-loop) -- workspace reshaping, no solver iteration
            while sweep.len() < steps {
                sweep.push(BvSlot::default());
            }
            for slot in sweep.iter_mut() {
                slot.l0 = 0;
                slot.ltau = 0.0;
                slot.lv.clear();
                slot.r0 = 0;
                slot.rtau = 0.0;
                slot.rv.clear();
            }
        }
    }

    /// Store the left reflector of slot `(s, k)` from a scratch slice.
    fn store_left(&mut self, s: usize, k: usize, l0: usize, tau: f64, v: &[f64]) {
        let slot = &mut self.sweeps[s][k];
        slot.l0 = l0;
        slot.ltau = tau;
        slot.lv.clear();
        slot.lv.reserve_exact(v.len());
        slot.lv.extend_from_slice(v);
    }

    /// Store the right reflector of slot `(s, k)` from a scratch slice.
    fn store_right(&mut self, s: usize, k: usize, r0: usize, tau: f64, v: &[f64]) {
        let slot = &mut self.sweeps[s][k];
        slot.r0 = r0;
        slot.rtau = tau;
        slot.rv.clear();
        slot.rv.reserve_exact(v.len());
        slot.rv.extend_from_slice(v);
    }

    /// Apply the accumulated *left* chase reflectors to `u` (first
    /// applied in the chase = outermost factor), i.e.
    /// `u <- L_(0,1) L_(0,2) ... L_(last) u`. With `u = U_b` this
    /// completes the left singular vectors of the band matrix.
    // tidy: allow(task-storage) -- main-thread dense back-transform after the chase
    pub fn apply_left(&self, u: &mut Matrix) {
        assert_eq!(u.rows(), self.n, "row count must match the chase order");
        let nc = u.cols();
        let ldu = u.ld();
        let mut work = vec![0.0f64; nc];
        for sweep in self.sweeps.iter().rev() {
            for slot in sweep.iter().rev() {
                if slot.lv.is_empty() || slot.ltau == 0.0 {
                    continue;
                }
                let len = slot.lv.len();
                larf_left(
                    &slot.lv,
                    slot.ltau,
                    len,
                    nc,
                    &mut u.as_mut_slice()[slot.l0..],
                    ldu,
                    &mut work,
                );
            }
        }
    }

    /// Apply the accumulated *right* chase reflectors to `v` (acting on
    /// the column coordinate space, so on `v`'s rows):
    /// `v <- R_(0,0) R_(0,1) ... R_(last) v`. With `v = V_b` this
    /// completes the right singular vectors of the band matrix.
    // tidy: allow(task-storage) -- main-thread dense back-transform after the chase
    pub fn apply_right(&self, v: &mut Matrix) {
        assert_eq!(v.rows(), self.n, "row count must match the chase order");
        let nc = v.cols();
        let ldv = v.ld();
        let mut work = vec![0.0f64; nc];
        for sweep in self.sweeps.iter().rev() {
            for slot in sweep.iter().rev() {
                if slot.rv.is_empty() || slot.rtau == 0.0 {
                    continue;
                }
                let len = slot.rv.len();
                larf_left(
                    &slot.rv,
                    slot.rtau,
                    len,
                    nc,
                    &mut v.as_mut_slice()[slot.r0..],
                    ldv,
                    &mut work,
                );
            }
        }
    }

    /// Bytes of heap capacity retained (footprint tests).
    pub fn capacity_bytes(&self) -> usize {
        use std::mem::size_of;
        self.sweeps
            .iter()
            .map(|sweep| {
                sweep
                    .iter()
                    .map(|slot| (slot.lv.capacity() + slot.rv.capacity()) * size_of::<f64>())
                    .sum::<usize>()
                    + sweep.capacity() * size_of::<BvSlot>()
            })
            .sum()
    }
}

/// Workspace requirement of the chase kernels for bandwidth `b`: one
/// dense scratch rectangle (at most `(2b+1) x (b+1)` either way), one
/// `larf` work row, one reflector vector.
pub fn stage2_ws_req(b: usize) -> MemReq {
    let w = 2 * b + 1;
    MemReq::f64s(w * (b + 1))
        .and(MemReq::f64s(w))
        .and(MemReq::f64s(b + 1))
}

/// Reusable scratch of the chase kernels.
#[derive(Debug, Default)]
pub struct Stage2Ws {
    scratch: Vec<f64>,
    work: Vec<f64>,
    v: Vec<f64>,
}

impl Stage2Ws {
    pub fn new() -> Stage2Ws {
        Stage2Ws::default()
    }

    /// Bytes of heap capacity retained (footprint tests).
    pub fn capacity_bytes(&self) -> usize {
        (self.scratch.capacity() + self.work.capacity() + self.v.capacity())
            * std::mem::size_of::<f64>()
    }
}

/// Result of the stage-2 reduction: the bidiagonal and the reflector set
/// of the chase.
pub struct ChaseResult {
    /// Diagonal of the bidiagonal form (length `n`).
    pub d: Vec<f64>,
    /// Superdiagonal (length `n - 1`).
    pub e: Vec<f64>,
    /// Chase reflectors for the back-transformation.
    pub bv: BvSet,
}

/// Region space of the band's diagonal-index intervals (entry `(i, j)`
/// lies in `[min(i, j), max(i, j)]`).
const BAND_SPACE: u32 = 0;
/// Region space of reflector slots, one point per `(sweep, step)`.
const BV_SPACE: u32 = 1;

/// Report a band touch over the inclusive diagonal-index interval
/// `[lo, hi]`.
fn touch_band(lo: usize, hi: usize, access: Access) {
    shadow::touch(BAND_SPACE, lo as u64, hi as u64 + 1, access);
}

/// Whole-band finite/shape contract at the driver entry points.
// tidy: allow(task-storage) -- whole-band main-thread contract before any task runs
fn band_contract(kernel: &'static str, band: &GeBandMatrix) {
    if contract::enabled() {
        let ab = band.as_slice();
        contract::require_vec(kernel, "ab", ab, ab.len());
        contract::require_finite_vec(kernel, "ab", ab, ab.len());
    }
}

/// `(a, r_k, r_{k+1})` bounds of chase task `(s, k >= 1)`.
fn bounds(n: usize, b: usize, s: usize, k: usize) -> (usize, usize, usize) {
    let a = s + 1 + (k - 1) * b;
    let rk = (s + k * b).min(n - 1);
    let rk1 = (s + (k + 1) * b).min(n - 1);
    (a, rk, rk1)
}

/// Copy the band rectangle `rows r0 .. r0+m x cols c0 .. c0+l` into
/// column-major dense scratch (leading dimension `m`). The caller must
/// have sized `scratch`; the rectangle's own diagonal-interval touch is
/// reported here (always inside the caller's covering span).
fn rect_to_dense(
    band: &GeBandMatrix,
    r0: usize,
    c0: usize,
    m: usize,
    l: usize,
    scratch: &mut [f64],
) {
    touch_band(r0.min(c0), (r0 + m - 1).max(c0 + l - 1), Access::Read);
    for c in 0..l {
        for r in 0..m {
            scratch[r + c * m] = band.get(r0 + r, c0 + c);
        }
    }
}

/// Inverse of [`rect_to_dense`]. Every `(i, j)` of the rectangle must be
/// inside the band store (the chase geometry guarantees it).
fn rect_from_dense(
    band: &mut GeBandMatrix,
    r0: usize,
    c0: usize,
    m: usize,
    l: usize,
    scratch: &[f64],
) {
    touch_band(r0.min(c0), (r0 + m - 1).max(c0 + l - 1), Access::Write);
    for c in 0..l {
        for r in 0..m {
            band.set(r0 + r, c0 + c, scratch[r + c * m]);
        }
    }
}

/// Apply the right reflector `(v[..l], tau)` (columns `c0 ..`) to the
/// band rectangle `rows r0 .. r0+m x cols c0 .. c0+l` through dense
/// scratch.
#[allow(clippy::too_many_arguments)]
fn rect_apply_right(
    band: &mut GeBandMatrix,
    r0: usize,
    c0: usize,
    m: usize,
    l: usize,
    v: &[f64],
    tau: f64,
    scratch: &mut Vec<f64>,
    work: &mut Vec<f64>,
) {
    if tau == 0.0 || m == 0 || l == 0 {
        return;
    }
    reset_f64s(scratch, m * l);
    reset_f64s(work, m);
    rect_to_dense(band, r0, c0, m, l, scratch);
    larf_right(&v[..l], tau, m, l, scratch, m, work);
    rect_from_dense(band, r0, c0, m, l, scratch);
}

/// Apply the left reflector `(v[..m], tau)` (rows `r0 ..`) to the band
/// rectangle `rows r0 .. r0+m x cols c0 .. c0+l` through dense scratch.
#[allow(clippy::too_many_arguments)]
fn rect_apply_left(
    band: &mut GeBandMatrix,
    r0: usize,
    c0: usize,
    m: usize,
    l: usize,
    v: &[f64],
    tau: f64,
    scratch: &mut Vec<f64>,
    work: &mut Vec<f64>,
) {
    if tau == 0.0 || m == 0 || l == 0 {
        return;
    }
    reset_f64s(scratch, m * l);
    reset_f64s(work, l);
    rect_to_dense(band, r0, c0, m, l, scratch);
    larf_left(&v[..m], tau, m, l, scratch, m, work);
    rect_from_dense(band, r0, c0, m, l, scratch);
}

/// `gbelr` head kernel of sweep `s`: generate the right reflector that
/// annihilates row `s` past the superdiagonal and apply it to the rows
/// below. Returns `(column origin, tau)`; the reflector vector is left
/// in `v`.
fn gbelr_head_ws(
    band: &mut GeBandMatrix,
    s: usize,
    scratch: &mut Vec<f64>,
    work: &mut Vec<f64>,
    v: &mut Vec<f64>,
) -> (usize, f64) {
    let n = band.n();
    let b = band.kl();
    let c1 = (s + b).min(n - 1);
    let l = c1 - s; // columns s+1 ..= c1
    debug_assert!(l >= 2, "head task needs fill to annihilate");
    touch_band(s, c1, Access::Write);
    reset_f64s(v, l);
    for (idx, vi) in v.iter_mut().enumerate() {
        *vi = band.get(s, s + 1 + idx);
    }
    let (beta, tau) = {
        let (head, tail) = v.split_at_mut(1);
        larfg(head[0], tail)
    };
    v[0] = 1.0;
    band.set(s, s + 1, beta);
    for j in s + 2..=c1 {
        band.set(s, j, 0.0);
    }
    add(Level::L1, 2 * l as u64);
    add_bytes(Level::L1, 16 * l as u64);
    // Rows s+1 ..= c1 are the only others with entries in those columns.
    rect_apply_right(band, s + 1, s + 1, c1 - s, l, v, tau, scratch, work);
    (s + 1, tau)
}

/// `gbcle` kernel of task `(s, k >= 1)`: generate the left reflector that
/// annihilates the bulge in column `a` below the diagonal and apply it to
/// the trailing columns. Returns `(row origin, tau)`; the vector is left
/// in `v`.
fn gbcle_ws(
    band: &mut GeBandMatrix,
    s: usize,
    k: usize,
    scratch: &mut Vec<f64>,
    work: &mut Vec<f64>,
    v: &mut Vec<f64>,
) -> (usize, f64) {
    let n = band.n();
    let b = band.kl();
    let (a, rk, rk1) = bounds(n, b, s, k);
    debug_assert!(rk > a, "left reflector needs >= 2 rows");
    touch_band(a, rk1, Access::Write);
    let ll = rk - a + 1;
    reset_f64s(v, ll);
    for (idx, vi) in v.iter_mut().enumerate() {
        *vi = band.get(a + idx, a);
    }
    let (beta, tau) = {
        let (head, tail) = v.split_at_mut(1);
        larfg(head[0], tail)
    };
    v[0] = 1.0;
    band.set(a, a, beta);
    for i in a + 1..=rk {
        band.set(i, a, 0.0);
    }
    add(Level::L1, 2 * ll as u64);
    add_bytes(Level::L1, 16 * ll as u64);
    rect_apply_left(band, a, a + 1, ll, rk1 - a, v, tau, scratch, work);
    (a, tau)
}

/// Trailing `gbelr` kernel of task `(s, k >= 1)`: generate the right
/// reflector that pushes the bulge in row `a` back inside bandwidth `b`
/// and apply it to the rows below. `None` when the bulge has already
/// reached the border.
fn gbelr_tail_ws(
    band: &mut GeBandMatrix,
    s: usize,
    k: usize,
    scratch: &mut Vec<f64>,
    work: &mut Vec<f64>,
    v: &mut Vec<f64>,
) -> Option<(usize, f64)> {
    let n = band.n();
    let b = band.kl();
    let (a, _rk, rk1) = bounds(n, b, s, k);
    let c0 = a + b;
    if c0 + 1 > rk1 {
        return None;
    }
    touch_band(a, rk1, Access::Write);
    let rl = rk1 - c0 + 1;
    reset_f64s(v, rl);
    for (idx, vi) in v.iter_mut().enumerate() {
        *vi = band.get(a, c0 + idx);
    }
    let (beta, tau) = {
        let (head, tail) = v.split_at_mut(1);
        larfg(head[0], tail)
    };
    v[0] = 1.0;
    band.set(a, c0, beta);
    for j in c0 + 1..=rk1 {
        band.set(a, j, 0.0);
    }
    add(Level::L1, 2 * rl as u64);
    add_bytes(Level::L1, 16 * rl as u64);
    rect_apply_right(band, a + 1, c0, rk1 - a, rl, v, tau, scratch, work);
    Some((c0, tau))
}

/// Serial chase of one sweep with caller-owned scratch.
fn run_sweep_ws(band: &mut GeBandMatrix, bv: &mut BvSet, ws: &mut Stage2Ws, s: usize) {
    let n = band.n();
    let b = band.kl();
    let steps = BvSet::steps_of_sweep(n, b, s);
    if steps == 0 {
        return;
    }
    let (c0, tau) = gbelr_head_ws(band, s, &mut ws.scratch, &mut ws.work, &mut ws.v);
    bv.store_right(s, 0, c0, tau, &ws.v);
    for k in 1..steps {
        let (l0, ltau) = gbcle_ws(band, s, k, &mut ws.scratch, &mut ws.work, &mut ws.v);
        bv.store_left(s, k, l0, ltau, &ws.v);
        if let Some((r0, rtau)) =
            gbelr_tail_ws(band, s, k, &mut ws.scratch, &mut ws.work, &mut ws.v)
        {
            bv.store_right(s, k, r0, rtau, &ws.v);
        }
    }
}

/// Reduce an upper-band matrix (logical bandwidth `kl`, with `ku >= 2*kl`
/// fill diagonals) to bidiagonal form. Serial, allocating entry point.
pub fn reduce(mut band: GeBandMatrix) -> ChaseResult {
    let mut bv = BvSet::default();
    let mut ws = Stage2Ws::default();
    let mut d = Vec::new();
    let mut e = Vec::new();
    // An inert control never fails a checkpoint.
    let _ = reduce_ws(&mut band, &mut bv, &mut ws, &mut d, &mut e, &Ctrl::NONE);
    ChaseResult { d, e, bv }
}

/// Planned variant of [`reduce`]: band, reflector set, scratch, and the
/// bidiagonal output all live in caller-owned storage. Polls `ctrl` once
/// per sweep — an armed cancel or expired deadline aborts between sweeps
/// with the structured error, leaving the caller's plan reusable.
pub fn reduce_ws(
    band: &mut GeBandMatrix,
    bv: &mut BvSet,
    ws: &mut Stage2Ws,
    d: &mut Vec<f64>,
    e: &mut Vec<f64>,
    ctrl: &Ctrl,
) -> tseig_matrix::Result<()> {
    let n = band.n();
    let b = band.kl();
    assert!(
        band.ku() >= 2 * b,
        "bulge chase needs ku >= 2*kl fill diagonals"
    );
    band_contract("ge2bd", band);
    bv.reset(n, b);
    if n > 2 && b > 1 {
        for s in 0..n - 2 {
            ctrl.checkpoint()?;
            run_sweep_ws(band, bv, ws, s);
        }
    }
    reset_f64s(d, n);
    reset_f64s(e, n.saturating_sub(1));
    band.to_bidiagonal_into(d, e);
    Ok(())
}

/// Scheduler selection for the chase (mirrors `tseig-core`'s stage 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage2Exec {
    /// Sweep-major serial loop.
    Serial,
    /// Precomputed static schedule on `n` workers.
    Static(usize),
    /// Superscalar dynamic runtime on `n` workers.
    Dynamic(usize),
}

/// One `(sweep, step)` unit of chase work.
#[derive(Clone, Copy, Debug)]
struct ChaseTask {
    s: usize,
    k: usize,
}

/// Exact inclusive diagonal-index span `[lo, hi]` of the band entries an
/// `(s, k)` task touches. Identical to the symmetric chase's spans: the
/// head covers `[s, min(s+b, n-1)]`, a chase step covers
/// `[s+1+(k-1)b, min(s+(k+1)b, n-1)]`. Exactness is load-bearing twice
/// over: any touch outside trips the shadow checker, and spans one index
/// wider would serialize `(s, k)` and `(s, k + 2)`, which are adjacent
/// but disjoint.
fn task_row_span(n: usize, b: usize, t: ChaseTask) -> (usize, usize) {
    let lo = if t.k == 0 {
        t.s
    } else {
        t.s + 1 + (t.k - 1) * b
    };
    let hi = (t.s + (t.k + 1) * b).min(n - 1);
    (lo, hi)
}

/// Reflector slot region of `(s, k)`. The stride is the maximum step
/// count of any sweep (sweep 0), so slot ids never collide.
fn bv_slot(n: usize, b: usize, s: usize, k: usize) -> Region {
    let stride = BvSet::steps_of_sweep(n, b, 0);
    Region::point(BV_SPACE, (s * stride + k) as u64)
}

/// Declared footprint of an `(s, k)` task: the exact band span (Write —
/// every kernel reads and writes its rectangles) plus the slot it
/// stores. No task reads another task's slot: each chase step
/// annihilates fill its predecessor fully materialized, so ordering
/// comes from the band intervals alone.
fn task_regions(n: usize, b: usize, t: ChaseTask) -> Vec<(Region, Access)> {
    let (lo, hi) = task_row_span(n, b, t);
    vec![
        (
            Region::span(BAND_SPACE, lo as u64, hi as u64 + 1),
            Access::Write,
        ),
        (bv_slot(n, b, t.s, t.k), Access::Write),
    ]
}

/// Tag and priority lane of a chase task (sweep heads sit on the
/// critical path).
fn task_meta(t: ChaseTask) -> (&'static str, Priority) {
    if t.k == 0 {
        ("gbelr", Priority::High)
    } else {
        ("gbcle+gbelr", Priority::Normal)
    }
}

/// The chase task set as *declared* specs — the same
/// `(tag, priority, regions)` triples [`reduce_scheduled`] submits,
/// exported for offline verification (`xtask graphcheck`).
pub fn chase_task_specs(n: usize, b: usize) -> Vec<TaskSpec> {
    enumerate_tasks(n, b)
        .into_iter()
        .map(|t| {
            let (tag, priority) = task_meta(t);
            TaskSpec {
                tag,
                priority,
                regions: task_regions(n, b, t),
            }
        })
        .collect()
}

/// Static-scheduler owner assignment (sweep round-robin) for the task
/// set of [`chase_task_specs`], exported for offline verification.
pub fn chase_task_owners(n: usize, b: usize, threads: usize) -> Vec<usize> {
    let threads = threads.max(1);
    enumerate_tasks(n, b)
        .iter()
        .map(|t| t.s % threads)
        .collect()
}

/// Enumerate all chase tasks in the serial (sweep-major) order.
fn enumerate_tasks(n: usize, b: usize) -> Vec<ChaseTask> {
    let mut tasks = Vec::new();
    if n <= 2 || b <= 1 {
        return tasks;
    }
    for s in 0..n - 2 {
        for k in 0..BvSet::steps_of_sweep(n, b, s) {
            tasks.push(ChaseTask { s, k });
        }
    }
    tasks
}

/// Execute one `(s, k)` task against the shared band/reflector cells.
///
/// # Safety contract
/// Caller (the scheduler) must guarantee exclusive access to the
/// declared regions; slot `(s, k)` is written by exactly one task.
fn run_task(band: &DataCell<GeBandMatrix>, bv: &DataCell<BvSet>, t: ChaseTask) {
    // Safety: region declarations serialize conflicting band accesses,
    // and each task writes only its own reflector slot. Band touches are
    // reported by the kernels; slot touches are reported here against
    // the declared slot regions.
    unsafe {
        let bm = band.get_mut();
        let bvm = bv.get_mut();
        let (n, b) = (bm.n(), bm.kl());
        let mut scratch = Vec::new();
        let mut work = Vec::new();
        let mut v = Vec::new();
        if t.k == 0 {
            let (c0, tau) = gbelr_head_ws(bm, t.s, &mut scratch, &mut work, &mut v);
            shadow::touch_region(bv_slot(n, b, t.s, 0), Access::Write);
            bvm.store_right(t.s, 0, c0, tau, &v);
        } else {
            let (l0, ltau) = gbcle_ws(bm, t.s, t.k, &mut scratch, &mut work, &mut v);
            shadow::touch_region(bv_slot(n, b, t.s, t.k), Access::Write);
            bvm.store_left(t.s, t.k, l0, ltau, &v);
            if let Some((r0, rtau)) = gbelr_tail_ws(bm, t.s, t.k, &mut scratch, &mut work, &mut v) {
                bvm.store_right(t.s, t.k, r0, rtau, &v);
            }
        }
    }
}

/// Run the bulge chase under the chosen scheduler. Produces the same
/// bidiagonal and reflector set as [`reduce`], bitwise. Scheduled
/// backends poll `ctrl` between task claims and drain the pool on an
/// armed cancel or expired deadline; the serial backend checkpoints
/// once per sweep.
pub fn reduce_scheduled(
    band: GeBandMatrix,
    exec: Stage2Exec,
    ctrl: &Ctrl,
) -> Result<ChaseResult, String> {
    let n = band.n();
    let b = band.kl();
    assert!(
        band.ku() >= 2 * b,
        "bulge chase needs ku >= 2*kl fill diagonals"
    );
    match exec {
        Stage2Exec::Serial => {
            let mut band = band;
            let mut bv = BvSet::default();
            let mut ws = Stage2Ws::default();
            let mut d = Vec::new();
            let mut e = Vec::new();
            reduce_ws(&mut band, &mut bv, &mut ws, &mut d, &mut e, ctrl)
                .map_err(|e| e.to_string())?;
            Ok(ChaseResult { d, e, bv })
        }
        Stage2Exec::Dynamic(threads) => {
            band_contract("reduce_scheduled", &band);
            let tasks = enumerate_tasks(n, b);
            let band_cell = Arc::new(DataCell::new(band));
            let bv_cell = Arc::new(DataCell::new(BvSet::new(n, b)));
            let mut graph = TaskGraph::new();
            for t in tasks {
                let regions = task_regions(n, b, t);
                let bc = band_cell.clone();
                let vc = bv_cell.clone();
                let (tag, prio) = task_meta(t);
                graph.add_task(tag, prio, &regions, move || run_task(&bc, &vc, t));
            }
            Runtime::new(threads).run_with_poll(graph, &|| ctrl.poll_stop())?;
            let band = Arc::try_unwrap(band_cell)
                .map_err(|_| "band still shared".to_string())?
                .into_inner();
            let bv = Arc::try_unwrap(bv_cell)
                .map_err(|_| "reflector set still shared".to_string())?
                .into_inner();
            let mut d = vec![0.0f64; n];
            let mut e = vec![0.0f64; n.saturating_sub(1)];
            band.to_bidiagonal_into(&mut d, &mut e);
            Ok(ChaseResult { d, e, bv })
        }
        Stage2Exec::Static(threads) => {
            let plan = Stage2Schedule::new(n, b, threads);
            reduce_static_prepared(band, &plan, ctrl)
        }
    }
}

/// Precomputed static-scheduler plan for one `(n, b, threads)` chase
/// shape: the task list plus the derived cross-worker wait lists.
pub struct Stage2Schedule {
    n: usize,
    b: usize,
    tasks: Vec<ChaseTask>,
    sched: StaticSchedule,
}

impl Stage2Schedule {
    /// Derive the schedule for an order-`n`, bandwidth-`b` chase on
    /// `threads` workers (sweep round-robin ownership).
    pub fn new(n: usize, b: usize, threads: usize) -> Self {
        let threads = threads.max(1);
        let tasks = enumerate_tasks(n, b);
        let owner = chase_task_owners(n, b, threads);
        let regions: Vec<Vec<(Region, Access)>> =
            tasks.iter().map(|t| task_regions(n, b, *t)).collect();
        let sched = StaticSchedule::derive(threads, &owner, &regions);
        Stage2Schedule { n, b, tasks, sched }
    }

    /// Matrix order the schedule was derived for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bandwidth the schedule was derived for.
    pub fn bandwidth(&self) -> usize {
        self.b
    }

    /// Worker count the schedule was derived for.
    pub fn threads(&self) -> usize {
        self.sched.threads()
    }
}

/// Run the bulge chase under a precomputed static schedule. Bit-identical
/// to `reduce_scheduled(band, Stage2Exec::Static(threads))` with a
/// matching plan, minus the per-solve wait-list derivation.
pub fn reduce_static_prepared(
    band: GeBandMatrix,
    plan: &Stage2Schedule,
    ctrl: &Ctrl,
) -> Result<ChaseResult, String> {
    let n = band.n();
    let b = band.kl();
    assert!(
        band.ku() >= 2 * b,
        "bulge chase needs ku >= 2*kl fill diagonals"
    );
    assert!(
        plan.n == n && plan.b == b,
        "static schedule shape mismatch: plan ({}, {}), band ({n}, {b})",
        plan.n,
        plan.b,
    );
    band_contract("reduce_static_prepared", &band);
    let band_cell = Arc::new(DataCell::new(band));
    let bv_cell = Arc::new(DataCell::new(BvSet::new(n, b)));
    plan.sched.execute_with_poll(
        |i| {
            let bc = band_cell.clone();
            let vc = bv_cell.clone();
            let t = plan.tasks[i];
            Box::new(move || run_task(&bc, &vc, t))
        },
        &|| ctrl.poll_stop(),
    )?;
    let band = Arc::try_unwrap(band_cell)
        .map_err(|_| "band still shared".to_string())?
        .into_inner();
    let bv = Arc::try_unwrap(bv_cell)
        .map_err(|_| "reflector set still shared".to_string())?
        .into_inner();
    let mut d = vec![0.0f64; n];
    let mut e = vec![0.0f64; n.saturating_sub(1)];
    band.to_bidiagonal_into(&mut d, &mut e);
    Ok(ChaseResult { d, e, bv })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tseig_runtime::verify;

    fn random_band(n: usize, b: usize, seed: u64) -> GeBandMatrix {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let dense = Matrix::from_fn(n, n, |i, j| {
            if i <= j && j <= i + b {
                rng.gen_range(-1.0..1.0)
            } else {
                0.0
            }
        });
        GeBandMatrix::from_dense(&dense, b, 2 * b)
    }

    fn bidiagonal_dense(d: &[f64], e: &[f64]) -> Matrix {
        let n = d.len();
        let mut m = Matrix::zeros(n, n);
        for j in 0..n {
            m[(j, j)] = d[j];
            if j + 1 < n {
                m[(j, j + 1)] = e[j];
            }
        }
        m
    }

    fn check_reduce(n: usize, b: usize, seed: u64) {
        let band = random_band(n, b, seed);
        let dense0 = band.to_dense();
        let res = reduce(band);
        // U_chase B_bid V_chase^T must reconstruct the band matrix.
        let bbid = bidiagonal_dense(&res.d, &res.e);
        let mut w = Matrix::identity(n);
        res.bv.apply_left(&mut w);
        let mut z = Matrix::identity(n);
        res.bv.apply_right(&mut z);
        let recon = w.multiply(&bbid).unwrap().multiply(&z.transpose()).unwrap();
        let tol = 1e-12 * (n as f64);
        assert!(
            recon.approx_eq(&dense0, tol),
            "chase reconstruction failed n={n} b={b}: err {}",
            {
                let mut diff = recon.clone();
                for (x, y) in diff.as_mut_slice().iter_mut().zip(dense0.as_slice()) {
                    *x -= *y;
                }
                diff.max_abs()
            }
        );
    }

    #[test]
    fn chase_reconstructs_band() {
        check_reduce(3, 2, 1);
        check_reduce(9, 2, 2);
        check_reduce(13, 3, 3);
        check_reduce(16, 5, 4);
        check_reduce(24, 8, 5);
        check_reduce(10, 16, 6); // bandwidth wider than the matrix
    }

    #[test]
    fn chase_leaves_bidiagonal_only() {
        for (n, b) in [(12, 3), (17, 4)] {
            let mut band = random_band(n, b, (n + b) as u64);
            let mut bv = BvSet::default();
            let mut ws = Stage2Ws::default();
            let (mut d, mut e) = (Vec::new(), Vec::new());
            reduce_ws(&mut band, &mut bv, &mut ws, &mut d, &mut e, &Ctrl::NONE).unwrap();
            assert_eq!(
                band.max_outside_bidiagonal(),
                0.0,
                "entries left outside the bidiagonal n={n} b={b}"
            );
        }
    }

    #[test]
    fn singular_values_preserved() {
        let (n, b) = (14, 3);
        let band = random_band(n, b, 7);
        let dense0 = band.to_dense();
        let res = reduce(band);
        let bbid = bidiagonal_dense(&res.d, &res.e);
        let want = tseig_kernels::reference::jacobi_eigen(
            &dense0.transpose().multiply(&dense0).unwrap(),
            false,
        )
        .unwrap()
        .eigenvalues;
        let got = tseig_kernels::reference::jacobi_eigen(
            &bbid.transpose().multiply(&bbid).unwrap(),
            false,
        )
        .unwrap()
        .eigenvalues;
        assert!(
            tseig_matrix::norms::eigenvalue_distance(&got, &want) < 1e-9,
            "chase changed the singular values"
        );
    }

    #[test]
    fn trivial_shapes() {
        // b <= 1 or n <= 2: already bidiagonal, no tasks.
        for (n, b) in [(0, 2), (1, 2), (2, 3), (6, 1), (6, 0)] {
            let band = random_band(n, b.max(1), 9);
            let dense0 = band.to_dense();
            assert!(enumerate_tasks(n, b).is_empty());
            let res = reduce(GeBandMatrix::from_dense(&dense0, b, 2 * b));
            let bbid = bidiagonal_dense(&res.d, &res.e);
            // With no chase the bidiagonal is just the stored part.
            for j in 0..n {
                assert_eq!(bbid[(j, j)], dense0[(j, j)]);
            }
        }
    }

    #[test]
    fn schedulers_match_serial_bitwise() {
        let (n, b) = (21, 4);
        let band = random_band(n, b, 11);
        let serial = reduce(GeBandMatrix::from_dense(&band.to_dense(), b, 2 * b));
        for exec in [Stage2Exec::Static(3), Stage2Exec::Dynamic(4)] {
            let got = reduce_scheduled(
                GeBandMatrix::from_dense(&band.to_dense(), b, 2 * b),
                exec,
                &Ctrl::NONE,
            )
            .unwrap();
            assert_eq!(serial.d, got.d, "d differs under {exec:?}");
            assert_eq!(serial.e, got.e, "e differs under {exec:?}");
        }
    }

    #[test]
    fn cancel_during_scheduled_chase() {
        // A token cancelled mid-chase must drain the pool (no hang, no
        // partial-result corruption) for both scheduled backends; a
        // pre-cancelled token must stop before any real work. Run under
        // TSan in CI: the cancel write races the worker polls by design,
        // and the atomics must make that race benign.
        use tseig_matrix::CancelToken;
        let (n, b) = (48, 4);
        let band = random_band(n, b, 29);
        for exec in [Stage2Exec::Dynamic(4), Stage2Exec::Static(3)] {
            let tok = CancelToken::new();
            let ctrl = Ctrl::new().with_cancel(tok.clone());
            let t = std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(1));
                tok.cancel();
            });
            // Either outcome is legal (the chase may finish first); what
            // matters is termination and a clean drain, which TSan and
            // the shadow checker audit.
            let _ = reduce_scheduled(band.clone(), exec, &ctrl);
            t.join().unwrap();

            let pre = CancelToken::new();
            pre.cancel();
            let ctrl = Ctrl::new().with_cancel(pre);
            let err = match reduce_scheduled(band.clone(), exec, &ctrl) {
                Err(e) => e,
                Ok(_) => panic!("pre-cancelled chase must not succeed ({exec:?})"),
            };
            assert_eq!(err, tseig_runtime::STOPPED_BY_POLL, "{exec:?}");
        }
    }

    #[test]
    fn task_count_matches_slot_shape() {
        for (n, b) in [(6, 2), (13, 3), (24, 5), (33, 8)] {
            let tasks = enumerate_tasks(n, b);
            let total: usize = (0..n - 2).map(|s| BvSet::steps_of_sweep(n, b, s)).sum();
            assert_eq!(tasks.len(), total);
            let bv = BvSet::new(n, b);
            let stored: usize = bv.sweeps.iter().map(Vec::len).sum();
            assert_eq!(stored, total);
        }
    }

    #[test]
    fn task_graph_certifies() {
        for (n, b) in [(6, 2), (13, 3), (16, 5), (24, 8), (33, 4)] {
            let specs = chase_task_specs(n, b);
            assert!(!specs.is_empty(), "no tasks for n={n} b={b}");
            let sum = verify::check_graph(&specs);
            assert!(
                sum.ok(),
                "dynamic graph violations for n={n} b={b}: {:?}",
                sum.violations
            );
            for threads in [1, 2, 3, 5] {
                let owners = chase_task_owners(n, b, threads);
                let st = verify::check_static(&specs, &owners, threads);
                assert!(
                    st.ok(),
                    "static schedule violations for n={n} b={b} t={threads}: {:?}",
                    st.violations
                );
            }
        }
    }

    #[test]
    fn warm_reset_is_allocation_stable() {
        let (n, b) = (18, 4);
        let mut band = random_band(n, b, 13);
        let dense0 = band.to_dense();
        let mut bv = BvSet::default();
        let mut ws = Stage2Ws::default();
        let (mut d, mut e) = (Vec::new(), Vec::new());
        reduce_ws(&mut band, &mut bv, &mut ws, &mut d, &mut e, &Ctrl::NONE).unwrap();
        let warm = bv.capacity_bytes() + ws.capacity_bytes();
        // Re-run at the same shape: capacities must not grow.
        let mut band2 = GeBandMatrix::from_dense(&dense0, b, 2 * b);
        reduce_ws(&mut band2, &mut bv, &mut ws, &mut d, &mut e, &Ctrl::NONE).unwrap();
        assert_eq!(warm, bv.capacity_bytes() + ws.capacity_bytes());
    }
}
