//! The paper's Tables 1–3 as data + the analytic flop counts used to
//! check the measured counters (`table1` bench).

/// A row of Table 1: flop complexity of one solver configuration, as
/// multiples of `n^3` (`O(n^2)` terms reported as `0`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Table1Row {
    pub routine: &'static str,
    pub method: &'static str,
    /// Tridiagonal reduction.
    pub trd: f64,
    /// Explicit generation of Q (QR-iteration path only).
    pub gen_q: f64,
    /// Eigensolve of T (worst case for D&C; `O(n^2)` for MRRR shown as 0).
    pub eig_t: f64,
    /// Eigenvector update (back-transformation), full spectrum.
    pub update_z: f64,
}

/// Paper Table 1 (one-stage complexities; the two-stage algorithm doubles
/// `update_z` to `4 n^3` when `Q2` is applied, but `trd` becomes
/// compute-bound).
pub const TABLE1: [Table1Row; 3] = [
    Table1Row {
        routine: "EVD",
        method: "D&C",
        trd: 4.0 / 3.0,
        gen_q: 0.0,
        eig_t: 8.0 / 3.0,
        update_z: 2.0,
    },
    Table1Row {
        routine: "EVR",
        method: "MRRR",
        trd: 4.0 / 3.0,
        gen_q: 0.0,
        eig_t: 0.0,
        update_z: 2.0,
    },
    Table1Row {
        routine: "EV",
        method: "QR",
        trd: 4.0 / 3.0,
        gen_q: 4.0 / 3.0 * 2.0,
        eig_t: 6.0,
        update_z: 0.0,
    },
];

/// A row of Table 2: dominant operation type of each two-sided reduction.
#[derive(Clone, Copy, Debug)]
pub struct Table2Row {
    pub reduction: &'static str,
    pub operation: &'static str,
    pub count: usize,
}

/// Paper Table 2: the one-stage TRD does 4 `symv`-class ops per element,
/// the bidiagonal (BRD) 4 `gemv`, the Hessenberg (HRD) 10 `gemv` — the
/// less symmetric the problem, the more memory traffic.
pub const TABLE2: [Table2Row; 3] = [
    Table2Row {
        reduction: "TRD",
        operation: "SYMV",
        count: 4,
    },
    Table2Row {
        reduction: "BRD",
        operation: "GEMV",
        count: 4,
    },
    Table2Row {
        reduction: "HRD",
        operation: "GEMV",
        count: 10,
    },
];

/// Analytic flop counts (leading order) for comparison against measured
/// counters.
pub mod analytic {
    /// One-stage tridiagonal reduction (`sytrd`): `4/3 n^3`.
    pub fn trd_one_stage(n: usize) -> f64 {
        4.0 / 3.0 * (n as f64).powi(3)
    }

    /// Two-stage reduction total: also `4/3 n^3` leading order — stage 1
    /// dominates; the bulge chase adds `O(n^2 nb)`.
    pub fn trd_two_stage(n: usize, nb: usize) -> f64 {
        4.0 / 3.0 * (n as f64).powi(3) + 6.0 * (n as f64) * (n as f64) * nb as f64
    }

    /// One-stage back-transformation of `k` eigenvectors: `2 n^2 k`.
    pub fn update_z_one_stage(n: usize, k: usize) -> f64 {
        2.0 * (n as f64) * (n as f64) * k as f64
    }

    /// Two-stage back-transformation (`Q2` then `Q1`): `4 n^2 k` — the
    /// doubling the paper's title trade-off is about.
    pub fn update_z_two_stage(n: usize, k: usize) -> f64 {
        4.0 * (n as f64) * (n as f64) * k as f64
    }

    /// Bulge-chasing operation count `n^2 (1 + ib/nb)`-class (paper §4);
    /// with our column-wise kernels it is `~6 n^2 nb`.
    pub fn bulge_chase(n: usize, nb: usize) -> f64 {
        6.0 * (n as f64) * (n as f64) * nb as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_totals() {
        // EVD total = 4/3 + 8/3 + 2 = 6 n^3 (worst case).
        let evd = &TABLE1[0];
        assert!((evd.trd + evd.eig_t + evd.update_z - 6.0).abs() < 1e-12);
        // EV (QR) total = 4/3 + 8/3 + 6 ~ 10 n^3 — why nobody uses it.
        let ev = &TABLE1[2];
        assert!(ev.gen_q + ev.eig_t > evd.eig_t + evd.update_z);
    }

    #[test]
    fn two_stage_doubles_update() {
        let n = 1000;
        let k = 1000;
        assert!(
            (analytic::update_z_two_stage(n, k) / analytic::update_z_one_stage(n, k) - 2.0).abs()
                < 1e-12
        );
    }

    #[test]
    fn bulge_chase_is_low_order() {
        let n = 10_000;
        let nb = 100;
        assert!(analytic::bulge_chase(n, nb) < 0.05 * analytic::trd_one_stage(n));
    }
}
