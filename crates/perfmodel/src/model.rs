//! Closed-form execution-time model (paper Eqs. (4)–(6), (9)–(10)).

/// Parameters of the Section-4 model.
#[derive(Clone, Copy, Debug)]
pub struct ModelParams {
    /// `gemm` rate, flop/s.
    pub alpha: f64,
    /// `gemv`/`symv` rate, flop/s.
    pub beta: f64,
    /// Core count.
    pub p: usize,
    /// Band width after stage 1 (`D` == `nb`).
    pub d: usize,
    /// Fraction of eigenvectors wanted.
    pub f: f64,
}

impl ModelParams {
    /// Parallelism available to the bulge chase: `p' <= min(D, p)`
    /// (paper, below Eq. (5)).
    pub fn p_prime(&self) -> f64 {
        (self.d.min(self.p)).max(1) as f64
    }
}

/// Eq. (4): one-stage execution time. The reduction runs at the
/// memory-bound rate `beta` (it cannot use more cores once the bus is
/// saturated); the eigenvector update runs at `alpha p`.
pub fn t_one_stage(n: usize, m: &ModelParams) -> f64 {
    let n3 = (n as f64).powi(3);
    (4.0 / 3.0) * n3 / m.beta + 2.0 * n3 * m.f / (m.alpha * m.p as f64)
}

/// Eq. (5): two-stage execution time — compute-bound stage 1, the
/// `O(n^2)` bulge chase with limited parallelism `p'`, and the doubled
/// (`4 n^3 f`) back-transformation.
pub fn t_two_stage(n: usize, m: &ModelParams) -> f64 {
    let nf = n as f64;
    let n3 = nf.powi(3);
    let ap = m.alpha * m.p as f64;
    (4.0 / 3.0) * n3 / ap
        + 6.0 * m.d as f64 * nf * nf / (m.alpha * m.p_prime())
        + 4.0 * n3 * m.f / ap
}

/// Eq. (6): the matrix size at which `t_1s == t_2s` — problems larger
/// than this favour the two-stage algorithm. Returns `None` when the
/// denominator is non-positive (machine so bandwidth-rich that one-stage
/// always wins — not the regime of any modern machine).
pub fn crossover_n(m: &ModelParams) -> Option<f64> {
    let denom = 2.0 * m.alpha * m.p as f64 - 3.0 * m.f * m.beta - 2.0 * m.beta;
    if denom <= 0.0 {
        return None;
    }
    Some(9.0 * m.beta * m.d as f64 / denom)
}

/// Eq. (9): bulge-chasing execution time `t_x = n^2 nb / alpha`.
pub fn t_bulge_exec(n: usize, nb: usize, alpha: f64) -> f64 {
    (n as f64) * (n as f64) * nb as f64 / alpha
}

/// Eq. (10): bulge-chasing communication time
/// `t_c = n^2 (nb / beta + gamma / nb)`, where `gamma` captures the
/// per-element latency cost of small-vector traffic.
pub fn t_bulge_comm(n: usize, nb: usize, beta: f64, gamma: f64) -> f64 {
    (n as f64) * (n as f64) * (nb as f64 / beta + gamma / nb as f64)
}

/// `nb` minimizing `t_x + t_c`: `d/dnb [nb/alpha + nb/beta + gamma/nb] = 0`
/// gives `nb* = sqrt(gamma / (1/alpha + 1/beta))`. The paper reports
/// `nb ~ 80` for its hardware.
pub fn optimal_nb(alpha: f64, beta: f64, gamma: f64) -> f64 {
    (gamma / (1.0 / alpha + 1.0 / beta)).sqrt()
}

/// Limit of the one-stage time as `p -> inf` (paper §4):
/// `4/3 n^3 / beta` — the memory wall.
pub fn t_one_stage_limit(n: usize, m: &ModelParams) -> f64 {
    (4.0 / 3.0) * (n as f64).powi(3) / m.beta
}

/// Limit of the two-stage time as `p -> inf`: `6 D n^2 / (alpha p')`.
pub fn t_two_stage_limit(n: usize, m: &ModelParams) -> f64 {
    6.0 * m.d as f64 * (n as f64) * (n as f64) / (m.alpha * m.p_prime())
}

/// Asymptotic speedup `lim t_1s / t_2s = (alpha p / beta + 3/2) / (1 + 3 f)`
/// (paper §4).
pub fn asymptotic_speedup(m: &ModelParams) -> f64 {
    (m.alpha * m.p as f64 / m.beta + 1.5) / (1.0 + 3.0 * m.f)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table 3, Intel Sandy Bridge column: alpha = 20 Gflop/s,
    /// p = 8. beta quoted as 80 MB/s-class memory-bound rate; in flop/s
    /// terms a symv at that bandwidth class lands near 1 Gflop/s.
    fn sandy_bridge() -> ModelParams {
        ModelParams {
            alpha: 20e9,
            beta: 1e9,
            p: 8,
            d: 80,
            f: 1.0,
        }
    }

    #[test]
    fn crossover_positive_and_small() {
        let m = sandy_bridge();
        let n = crossover_n(&m).unwrap();
        // Paper: "a wide range of problem sizes benefit" — the crossover
        // must be far below practical sizes.
        assert!(n > 0.0 && n < 1000.0, "crossover {n}");
    }

    #[test]
    fn two_stage_wins_beyond_crossover() {
        // A bandwidth-rich low-core configuration keeps the crossover
        // visible (on Sandy-Bridge-class numbers it is single digits —
        // "a wide range of problem sizes benefit").
        let m = ModelParams {
            alpha: 2e9,
            beta: 1e9,
            p: 2,
            d: 80,
            f: 1.0,
        };
        let nc = crossover_n(&m).unwrap();
        assert!(nc > 50.0, "crossover {nc}");
        let n_small = (nc * 0.3) as usize;
        let n_big = (nc * 10.0) as usize;
        assert!(t_one_stage(n_small, &m) < t_two_stage(n_small, &m));
        assert!(t_one_stage(n_big, &m) > t_two_stage(n_big, &m));
    }

    #[test]
    fn crossover_is_breakeven_point() {
        let m = sandy_bridge();
        let nc = crossover_n(&m).unwrap();
        let n = nc.round() as usize;
        let r = t_one_stage(n, &m) / t_two_stage(n, &m);
        // The closed form drops the p' != p distinction; allow slack.
        assert!((r - 1.0).abs() < 0.35, "breakeven ratio {r}");
    }

    #[test]
    fn fraction_helps_both_but_two_stage_more() {
        // Smaller f removes 2x more work from the two-stage pipeline
        // (4 n^3 f vs 2 n^3 f) — the Figure 4d effect.
        let mut m = sandy_bridge();
        let n = 20_000;
        m.f = 1.0;
        let full = t_two_stage(n, &m);
        m.f = 0.2;
        let part = t_two_stage(n, &m);
        assert!(part < full);
        let saved_two = full - part;
        m.f = 1.0;
        let full1 = t_one_stage(n, &m);
        m.f = 0.2;
        let part1 = t_one_stage(n, &m);
        assert!(saved_two > (full1 - part1) * 1.9);
    }

    #[test]
    fn limits_match_paper() {
        let m = sandy_bridge();
        let n = 10_000;
        // Big-p model approaches the limits.
        let big = ModelParams { p: 10_000, ..m };
        let t1 = t_one_stage(n, &big);
        assert!((t1 - t_one_stage_limit(n, &big)) / t1 < 0.01);
        let t2 = t_two_stage(n, &big);
        // p' is capped at D, so the bulge term dominates as p grows.
        assert!(t_two_stage_limit(n, &big) / t2 > 0.5);
    }

    #[test]
    fn asymptotic_speedup_formula() {
        let m = sandy_bridge();
        let s = asymptotic_speedup(&m);
        // alpha p / beta = 160 -> (160 + 1.5)/4 ~ 40.
        assert!((s - (160.0 + 1.5) / 4.0).abs() < 1e-9);
    }

    #[test]
    fn bulge_model_has_interior_minimum() {
        let (alpha, beta, gamma) = (20e9, 1e9, 3000.0 * 1e-0);
        let nbs: Vec<usize> = (1..=40).map(|i| i * 10).collect();
        let total: Vec<f64> = nbs
            .iter()
            .map(|&nb| t_bulge_exec(1000, nb, alpha) + t_bulge_comm(1000, nb, beta, gamma / beta))
            .collect();
        let min_idx = total
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(
            min_idx > 0 && min_idx < nbs.len() - 1,
            "minimum at the boundary"
        );
        let pred = optimal_nb(alpha, beta, gamma / beta);
        assert!(
            (nbs[min_idx] as f64 - pred).abs() <= 15.0,
            "pred {pred} vs {}",
            nbs[min_idx]
        );
    }

    #[test]
    fn degenerate_crossover() {
        // beta so large the denominator flips: no crossover.
        let m = ModelParams {
            alpha: 1.0,
            beta: 1e12,
            p: 1,
            d: 10,
            f: 1.0,
        };
        assert!(crossover_n(&m).is_none());
    }
}
