//! Section-4 performance model of the paper.
//!
//! The model predicts when the two-stage algorithm beats the one-stage
//! one from four machine/problem parameters:
//!
//! * `alpha` — execution rate of `gemm` (flop/s): the compute-bound rate,
//! * `beta`  — execution rate of `gemv`/`symv` (flop/s): the
//!   memory-bound rate (the paper's Table 3 quotes it in bytes/s terms;
//!   we use flop/s uniformly — a `gemv` performs 1 flop per 4 bytes
//!   streamed, so the two differ by a constant),
//! * `p`     — core count,
//! * `D`     — band width after stage 1 (`nb`),
//! * `f`     — fraction of eigenvectors wanted, `0 < f <= 1`.
//!
//! Equations reproduced:
//!
//! * Eq. (4): `t_1s = 4/3 n^3 / beta + 2 n^3 f / (alpha p)`
//! * Eq. (5): `t_2s = 4/3 n^3 / (alpha p) + 6 D n^2 / (alpha p') + 4 n^3 f / (alpha p)`
//! * Eq. (6): crossover `n(alpha, beta, D, f, p) = 9 beta D / (2 alpha p - 3 f beta - 2 beta)`
//! * Eqs. (9)–(10): bulge-chasing compute/communication time vs `nb`,
//!   whose minimum predicts the optimal tile size (Figure 5, `nb ~ 80`
//!   on the paper's hardware).
//!
//! [`measure_machine`] measures `alpha` and `beta` on the *current*
//! machine with the workspace's own kernels, reproducing Table 3's
//! parameter table for this host.

pub mod calibrate;
pub mod model;
pub mod tables;

pub use calibrate::{measure_machine, MachineParams};
pub use model::{crossover_n, t_bulge_comm, t_bulge_exec, t_one_stage, t_two_stage, ModelParams};
