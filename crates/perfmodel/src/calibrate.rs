//! Measure the model parameters on the current machine (Table 3).
//!
//! `alpha` = achieved `gemm` rate, `beta` = achieved `symv` rate, both
//! with this workspace's own kernels (the same ones both pipelines run
//! on), `p` = rayon thread count.

use std::time::Instant;
use tseig_kernels::blas2::symv_lower;
use tseig_kernels::blas3::{gemm_par, Trans};
use tseig_matrix::Matrix;

use crate::model::ModelParams;

/// Measured machine parameters.
#[derive(Clone, Copy, Debug)]
pub struct MachineParams {
    /// Sequential `gemm` rate per core, flop/s.
    pub alpha_core: f64,
    /// Parallel `gemm` rate, flop/s (~ `alpha_core * p` for good kernels).
    pub alpha_par: f64,
    /// `symv` rate, flop/s (memory-bound).
    pub beta: f64,
    /// Worker count.
    pub p: usize,
}

impl MachineParams {
    /// Convert to model parameters for a given band width and fraction.
    pub fn model(&self, d: usize, f: f64) -> ModelParams {
        ModelParams {
            alpha: self.alpha_core,
            beta: self.beta,
            p: self.p,
            d,
            f,
        }
    }
}

/// Run short calibration kernels. `n` controls the working-set size; it
/// should comfortably exceed the last-level cache for an honest `beta`
/// (1500–3000 is reasonable).
pub fn measure_machine(n: usize) -> MachineParams {
    let n = n.max(64);
    let a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 97) as f64 / 97.0 - 0.5);
    let b = Matrix::from_fn(n, n, |i, j| ((i * 13 + j * 29) % 83) as f64 / 83.0 - 0.5);
    let mut c = Matrix::zeros(n, n);

    // Parallel gemm rate.
    let t0 = Instant::now();
    gemm_par(
        Trans::No,
        Trans::No,
        n,
        n,
        n,
        1.0,
        a.as_slice(),
        n,
        b.as_slice(),
        n,
        0.0,
        c.as_mut_slice(),
        n,
    );
    let alpha_par = 2.0 * (n as f64).powi(3) / t0.elapsed().as_secs_f64();

    // Sequential (single-thread-equivalent) gemm rate on a smaller block.
    let ns = (n / 2).max(64);
    let t1 = Instant::now();
    tseig_kernels::blas3::gemm(
        Trans::No,
        Trans::No,
        ns,
        ns,
        ns,
        1.0,
        a.as_slice(),
        n,
        b.as_slice(),
        n,
        0.0,
        c.as_mut_slice(),
        n,
    );
    let alpha_core = 2.0 * (ns as f64).powi(3) / t1.elapsed().as_secs_f64();

    // symv rate: repeat to amortize timer resolution.
    let x = vec![1.0f64; n];
    let mut y = vec![0.0f64; n];
    let reps = (4usize).max(200_000_000 / (2 * n * n)).min(64);
    let t2 = Instant::now();
    for _ in 0..reps {
        symv_lower(n, 1.0, a.as_slice(), n, &x, 0.0, &mut y);
    }
    let beta = reps as f64 * 2.0 * (n as f64) * (n as f64) / t2.elapsed().as_secs_f64();

    MachineParams {
        alpha_core,
        alpha_par,
        beta,
        p: rayon::current_num_threads(),
    }
}

/// Estimate the single-core FMA peak (flop/s): a register-resident
/// microbenchmark of independent vector FMA accumulator chains with no
/// memory traffic in the timed loop — the denominator for "fraction of
/// peak" reporting in the kernel benches.
///
/// Delegates to `tseig_kernels::blas3::simd::fma_peak`, which probes
/// with the same vector ISA the dispatched GEMM microkernel issues: an
/// explicit-zmm kernel must be judged against a zmm ceiling, and a
/// portable autovectorized probe typically stops at ymm width. The
/// estimate is a *floor* of true peak (loop overhead), so quoting a
/// gemm rate against it slightly flatters the kernel, never the
/// machine.
pub fn measure_fma_peak() -> f64 {
    tseig_kernels::blas3::simd::fma_peak()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fma_peak_is_sane() {
        let peak = measure_fma_peak();
        assert!(peak > 1e6, "peak {peak:.3e}");
        // On optimized builds the register-resident loop must beat the
        // memory-bound symv rate by a wide margin.
        #[cfg(not(debug_assertions))]
        {
            let m = measure_machine(256);
            assert!(peak > m.beta, "peak {peak:.3e} vs beta {:.3e}", m.beta);
        }
    }

    #[test]
    fn calibration_returns_sane_rates() {
        let m = measure_machine(256);
        assert!(m.alpha_core > 1e6, "alpha {:.3e}", m.alpha_core);
        assert!(m.beta > 1e6, "beta {:.3e}", m.beta);
        assert!(m.p >= 1);
        // gemm must beat symv — the premise of the whole paper. Only
        // meaningful on optimized builds: debug codegen flattens the
        // kernel differences entirely.
        #[cfg(not(debug_assertions))]
        assert!(
            m.alpha_par > m.beta * 0.5,
            "alpha_par {:.3e} vs beta {:.3e}",
            m.alpha_par,
            m.beta
        );
    }

    #[test]
    fn model_conversion() {
        let m = MachineParams {
            alpha_core: 2e9,
            alpha_par: 8e9,
            beta: 5e8,
            p: 4,
        };
        let p = m.model(64, 0.2);
        assert_eq!(p.d, 64);
        assert_eq!(p.f, 0.2);
        assert_eq!(p.p, 4);
    }
}
