//! Hermitian eigensolver driver.
//!
//! `A = Z diag(lambda) Z^H` for dense Hermitian `A`, through the
//! two-stage pipeline with the tridiagonal eigensolve done entirely in
//! *real* arithmetic (phases folded back in during the transformation).

use crate::backtransform::{apply_q, HermScalar};
use crate::stage1::he2hb_with;
use crate::stage2::{reduce_scheduled, Scheduler};
use std::time::Instant;
use tseig_kernels::scaling;
use tseig_matrix::diagnostics::{Recorder, Recovery, SolveDiagnostics, VerifyLevel, VerifyReport};
use tseig_matrix::{CMatrixG, ComplexScalar, Ctrl, Error, Result, C64};
use tseig_tridiag::{EigenRange, Method, PhaseTimings};

/// Scaled-measure acceptance bound for [`HermitianEigen::verify`] —
/// same convention as the real driver: 1–100 is excellent, above ~1e3
/// indicates a bug.
pub const VERIFY_BOUND: f64 = 1e3;

/// Result of a Hermitian eigensolve. Eigenvalues are always `f64` (the
/// tridiagonal solve runs in full precision for every complex width);
/// eigenvectors carry the input's element type.
#[derive(Clone, Debug)]
pub struct HermitianResult<T: ComplexScalar = C64> {
    /// Ascending (real) eigenvalues of the selected range.
    pub eigenvalues: Vec<f64>,
    /// Matching complex eigenvectors, if requested.
    pub eigenvectors: Option<CMatrixG<T>>,
    /// Phase wall-times.
    pub timings: PhaseTimings,
    /// Robustness-layer report: fallbacks, norm scaling, verification.
    pub diagnostics: SolveDiagnostics,
}

/// Builder for the two-stage Hermitian eigensolver.
///
/// ```
/// use tseig_hermitian::{HermitianEigen, validate};
/// let a = validate::hermitian_with_spectrum(
///     &(0..24).map(|i| i as f64).collect::<Vec<_>>(), 7);
/// let r = HermitianEigen::new().nb(4).solve(&a).unwrap();
/// assert!((r.eigenvalues[23] - 23.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct HermitianEigen {
    nb: usize,
    ell: usize,
    method: Method,
    range: EigenRange,
    want_vectors: bool,
    scheduler: Scheduler,
    verify: VerifyLevel,
    ctrl: Ctrl,
}

impl Default for HermitianEigen {
    fn default() -> Self {
        HermitianEigen {
            nb: 32,
            ell: 0,
            method: Method::DivideAndConquer,
            range: EigenRange::All,
            want_vectors: true,
            scheduler: Scheduler::Serial,
            verify: VerifyLevel::Off,
            ctrl: Ctrl::NONE,
        }
    }
}

impl HermitianEigen {
    pub fn new() -> Self {
        Self::default()
    }

    /// Band width (`nb`).
    pub fn nb(mut self, nb: usize) -> Self {
        self.nb = nb.max(1);
        self
    }

    /// Diamond grouping (`0` = `nb/2`).
    pub fn ell(mut self, ell: usize) -> Self {
        self.ell = ell;
        self
    }

    /// Tridiagonal eigensolver.
    pub fn method(mut self, m: Method) -> Self {
        self.method = m;
        self
    }

    /// Eigenpair selection.
    pub fn range(mut self, r: EigenRange) -> Self {
        self.range = r;
        self
    }

    /// Compute eigenvectors or not.
    pub fn vectors(mut self, want: bool) -> Self {
        self.want_vectors = want;
        self
    }

    /// Stage-2 scheduler (serial kernel loop, static pipelined lists, or
    /// the dynamic task runtime — all bit-identical in results).
    pub fn scheduler(mut self, s: Scheduler) -> Self {
        self.scheduler = s;
        self
    }

    /// Opt-in post-solve verification against the original input; see
    /// the real driver's `SymmetricEigen::verify` for semantics.
    pub fn verify(mut self, level: VerifyLevel) -> Self {
        self.verify = level;
        self
    }

    /// Attach a lifecycle control (cancellation token, deadline,
    /// heartbeat): the solve polls it at every phase boundary and
    /// stage-2 sweep, surfacing `Error::Cancelled` /
    /// `Error::DeadlineExceeded` cooperatively.
    pub fn ctrl(mut self, ctrl: Ctrl) -> Self {
        self.ctrl = ctrl;
        self
    }

    /// The attached lifecycle control.
    pub fn control(&self) -> &Ctrl {
        &self.ctrl
    }

    /// Requested verification depth — read by the generalized driver,
    /// which verifies at the pencil level instead of the standard-`C`
    /// level.
    pub(crate) fn verify_level(&self) -> VerifyLevel {
        self.verify
    }

    /// Solve the dense Hermitian eigenproblem (lower triangle of `a`
    /// referenced; the diagonal's imaginary part is ignored). Generic
    /// over the complex element width: `CMatrix` (= `CMatrixG<C64>`)
    /// gives the `zheev`-equivalent solve, `CMatrixG<C32>` the
    /// `cheev`-equivalent one with verification tolerances scaled to
    /// the narrower epsilon.
    ///
    /// Carries the same robustness layer as the real driver: input
    /// screening ([`Error::InvalidData`]), norm scaling with eigenvalue
    /// rescaling on exit, scheduler and tridiagonal fallback chains, and
    /// optional verification — all reported in [`SolveDiagnostics`].
    pub fn solve<T: HermScalar>(&self, a: &CMatrixG<T>) -> Result<HermitianResult<T>> {
        if a.rows() != a.cols() {
            return Err(Error::DimensionMismatch(format!(
                "matrix is {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        let n = a.rows();
        let timings = PhaseTimings::default();

        let anorm = scaling::screen_hermitian(a)?;

        if n == 0 {
            return Ok(HermitianResult {
                eigenvalues: vec![],
                eigenvectors: self.want_vectors.then(|| CMatrixG::zeros(0, 0)),
                timings,
                diagnostics: SolveDiagnostics::default(),
            });
        }
        if n == 1 {
            return self.solve_order_one(a, timings);
        }

        let ell = if self.ell == 0 {
            (self.nb / 2).max(1)
        } else {
            self.ell
        };

        // Norm scaling (same window as the real driver); `Value` range
        // bounds select in the scaled spectrum, so they scale too.
        let sigma = scaling::safe_scale_factor(anorm);
        let scaled = sigma.map(|s| {
            let mut b = a.clone();
            scaling::scale_cmatrix(&mut b, s);
            b
        });
        let work: &CMatrixG<T> = scaled.as_ref().unwrap_or(a);
        let range = match (sigma, self.range) {
            (Some(s), EigenRange::Value(vl, vu)) => EigenRange::Value(vl * s, vu * s),
            (_, r) => r,
        };

        let rec = Recorder::new();
        let mut timings = timings;

        let t0 = Instant::now();
        let bf = he2hb_with(work, self.nb, &self.ctrl)?;
        timings.stage1 = t0.elapsed();

        // Stage 2 with the serial-path fallback on scheduled failure.
        let t1 = Instant::now();
        let chase = match reduce_scheduled(bf.band.clone(), self.nb, self.scheduler, &self.ctrl) {
            Ok(c) => c,
            Err(e) if self.scheduler != Scheduler::Serial => {
                // A cancel or expired deadline drains the scheduled pool
                // as a runtime error; surface it structurally instead of
                // burning the remaining budget on a serial rerun.
                self.ctrl.checkpoint()?;
                rec.record(Recovery::SchedulerFallback { error: e });
                reduce_scheduled(bf.band.clone(), self.nb, Scheduler::Serial, &self.ctrl)
                    .map_err(Error::Runtime)?
            }
            Err(e) => return Err(Error::Runtime(e)),
        };
        timings.stage2 = t1.elapsed();
        timings.reduction = timings.stage1 + timings.stage2;

        let t2 = Instant::now();
        let sol = tseig_tridiag::solve_with_diag(
            &chase.tridiagonal,
            self.method,
            range,
            self.want_vectors,
            &rec,
            &self.ctrl,
        )?;
        timings.tridiag_solve = t2.elapsed();

        let eigenvectors = if self.want_vectors {
            let t3 = Instant::now();
            self.ctrl.checkpoint()?;
            let Some(e_real) = sol.eigenvectors else {
                return Err(Error::Runtime(
                    "tridiagonal solver returned no eigenvectors although vectors \
                     were requested"
                        .into(),
                ));
            };
            // Complexify, then the fused one-pass D + Q2 + Q1 chain.
            let mut z = CMatrixG::from_fn(e_real.rows(), e_real.cols(), |i, j| {
                T::new(e_real[(i, j)], 0.0)
            });
            apply_q(&chase.v2, &bf.panels, Some(&chase.phases), &mut z, ell, 0);
            timings.backtransform = t3.elapsed();
            Some(z)
        } else {
            None
        };

        let mut eigenvalues = sol.eigenvalues;
        if let Some(s) = sigma {
            for v in &mut eigenvalues {
                *v /= s;
            }
        }

        let mut diagnostics = SolveDiagnostics::from_recorder(&rec);
        diagnostics.scaled_by = sigma;

        if self.verify != VerifyLevel::Off {
            diagnostics.verify = Some(verify_solution(
                a,
                &eigenvalues,
                eigenvectors.as_ref(),
                self.verify,
            )?);
        }

        Ok(HermitianResult {
            eigenvalues,
            eigenvectors,
            timings,
            diagnostics,
        })
    }

    /// Order-1 problem: the (real part of the) single diagonal entry.
    fn solve_order_one<T: ComplexScalar>(
        &self,
        a: &CMatrixG<T>,
        timings: PhaseTimings,
    ) -> Result<HermitianResult<T>> {
        let a00 = a[(0, 0)].re();
        let include = match self.range {
            EigenRange::All => true,
            EigenRange::Index(lo, hi) => lo == 0 && hi >= 1,
            EigenRange::Value(vl, vu) => vl < a00 && a00 <= vu,
        };
        let k = usize::from(include);
        let eigenvalues = if include { vec![a00] } else { vec![] };
        let eigenvectors = self.want_vectors.then(|| {
            let mut z = CMatrixG::zeros(1, k);
            if include {
                z[(0, 0)] = T::ONE;
            }
            z
        });
        Ok(HermitianResult {
            eigenvalues,
            eigenvectors,
            timings,
            diagnostics: SolveDiagnostics::default(),
        })
    }
}

/// Verify a Hermitian eigendecomposition: finite ascending eigenvalues,
/// per-column scaled residual, and (for [`VerifyLevel::Full`]) pairwise
/// unitarity, all bounded by [`VERIFY_BOUND`]. The scaled measures
/// divide by the *element type's* epsilon ([`ComplexScalar::EPS`]), so
/// the same [`VERIFY_BOUND`] applies to C32 and C64 solves alike.
fn verify_solution<T: ComplexScalar>(
    a: &CMatrixG<T>,
    lambda: &[f64],
    z: Option<&CMatrixG<T>>,
    level: VerifyLevel,
) -> Result<VerifyReport> {
    let n = a.rows();
    let eps = T::EPS / 2.0;
    for (j, &lam) in lambda.iter().enumerate() {
        if !lam.is_finite() {
            return Err(Error::VerificationFailed {
                index: j,
                measure: "eigenvalue finiteness".into(),
                value: lam,
                bound: f64::MAX,
            });
        }
        if j > 0 && lam < lambda[j - 1] {
            return Err(Error::VerificationFailed {
                index: j,
                measure: "eigenvalue ordering".into(),
                value: lam - lambda[j - 1],
                bound: 0.0,
            });
        }
    }
    let Some(z) = z else {
        return Ok(VerifyReport::default());
    };
    let az = a.multiply(z);
    let norm1 = (0..n)
        .map(|j| (0..n).map(|i| a[(i, j)].abs()).sum::<f64>())
        .fold(0.0f64, f64::max);
    let denom = norm1.max(f64::MIN_POSITIVE) * n as f64 * eps;
    let mut worst = (0usize, 0.0f64);
    for (j, &lam) in lambda.iter().enumerate() {
        let mut colmax = 0.0f64;
        for i in 0..n {
            colmax = colmax.max((az[(i, j)] - z[(i, j)].scale(lam)).abs());
        }
        let m = colmax / denom;
        if m > worst.1 || m.is_nan() {
            worst = (j, m);
        }
    }
    // The NaN check matters: a poisoned vector yields a NaN measure,
    // which must fail verification rather than slip past `>`.
    if worst.1 > VERIFY_BOUND || worst.1.is_nan() {
        return Err(Error::VerificationFailed {
            index: worst.0,
            measure: "scaled residual".into(),
            value: worst.1,
            bound: VERIFY_BOUND,
        });
    }
    let residual = worst.1;
    let mut orthogonality = 0.0;
    if level == VerifyLevel::Full {
        let g = z.adjoint().multiply(z);
        let scale = n as f64 * eps;
        let mut worst = (0usize, 0.0f64);
        for j in 0..z.cols() {
            for i in 0..=j {
                let target = if i == j { 1.0 } else { 0.0 };
                let m = (g[(i, j)] - T::new(target, 0.0)).abs() / scale;
                if m > worst.1 || m.is_nan() {
                    worst = (j, m);
                }
            }
        }
        // The NaN check matters: a poisoned vector yields a NaN measure,
        // which must fail verification rather than slip past `>`.
        if worst.1 > VERIFY_BOUND || worst.1.is_nan() {
            return Err(Error::VerificationFailed {
                index: worst.0,
                measure: "orthogonality".into(),
                value: worst.1,
                bound: VERIFY_BOUND,
            });
        }
        orthogonality = worst.1;
    }
    Ok(VerifyReport {
        residual,
        orthogonality,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{
        hermitian_residual, hermitian_with_spectrum, rand_hermitian, real_embedding_eigenvalues,
        unitary_error,
    };
    use tseig_matrix::{norms, CMatrix};

    fn check(a: &CMatrix, r: &HermitianResult, tol: f64) {
        let z = r.eigenvectors.as_ref().expect("vectors");
        let res = hermitian_residual(a, &r.eigenvalues, z);
        let uni = unitary_error(z);
        assert!(res < tol, "residual {res}");
        assert!(uni < tol, "unitarity {uni}");
    }

    #[test]
    fn prescribed_spectrum_recovered() {
        let n = 30;
        let lambda: Vec<f64> = (0..n).map(|i| -2.0 + 0.3 * i as f64).collect();
        let a = hermitian_with_spectrum(&lambda, 80);
        let r = HermitianEigen::new().nb(6).solve(&a).unwrap();
        assert!(norms::eigenvalue_distance(&r.eigenvalues, &lambda) < 1e-10);
        check(&a, &r, 500.0);
    }

    #[test]
    fn random_hermitian_vs_embedding_oracle() {
        let n = 24;
        let a = rand_hermitian(n, 81);
        let want = real_embedding_eigenvalues(&a);
        let r = HermitianEigen::new().nb(5).solve(&a).unwrap();
        assert!(norms::eigenvalue_distance(&r.eigenvalues, &want) < 1e-9);
        check(&a, &r, 500.0);
    }

    #[test]
    fn real_input_matches_real_pipeline() {
        // A real symmetric matrix run through the Hermitian pipeline
        // must agree with the real two-stage solver.
        let n = 26;
        let ar = tseig_matrix::gen::random_symmetric(n, 82);
        let ac = CMatrix::from_real(&ar);
        let rh = HermitianEigen::new().nb(4).solve(&ac).unwrap();
        let want = tseig_kernels::reference::jacobi_eigen(&ar, false)
            .unwrap()
            .eigenvalues;
        assert!(norms::eigenvalue_distance(&rh.eigenvalues, &want) < 1e-9);
        // Vectors should be essentially real up to a global unit phase
        // per column; check residual instead of realness.
        check(&ac, &rh, 500.0);
    }

    #[test]
    fn all_methods_and_nb_values() {
        let n = 20;
        let a = rand_hermitian(n, 83);
        let want = real_embedding_eigenvalues(&a);
        for m in [
            Method::Qr,
            Method::DivideAndConquer,
            Method::BisectionInverse,
        ] {
            for nb in [2usize, 4, 9, 32] {
                let r = HermitianEigen::new().nb(nb).method(m).solve(&a).unwrap();
                assert!(
                    norms::eigenvalue_distance(&r.eigenvalues, &want) < 1e-9,
                    "{m:?} nb={nb}"
                );
                check(&a, &r, 500.0);
            }
        }
    }

    #[test]
    fn schedulers_equivalent_end_to_end() {
        let n = 26;
        let a = rand_hermitian(n, 88);
        let serial = HermitianEigen::new().nb(5).solve(&a).unwrap();
        for s in [Scheduler::Static(3), Scheduler::Dynamic(2)] {
            let r = HermitianEigen::new().nb(5).scheduler(s).solve(&a).unwrap();
            // Stage 2 is bit-identical under every scheduler, so the
            // whole solve is too.
            assert_eq!(r.eigenvalues, serial.eigenvalues, "{s:?}");
            check(&a, &r, 500.0);
        }
    }

    #[test]
    fn subset_selection() {
        let n = 22;
        let a = rand_hermitian(n, 84);
        let full = HermitianEigen::new().nb(4).solve(&a).unwrap();
        let part = HermitianEigen::new()
            .nb(4)
            .method(Method::BisectionInverse)
            .range(EigenRange::Index(3, 9))
            .solve(&a)
            .unwrap();
        assert_eq!(part.eigenvalues.len(), 6);
        assert!(norms::eigenvalue_distance(&part.eigenvalues, &full.eigenvalues[3..9]) < 1e-9);
        check(&a, &part, 500.0);
    }

    #[test]
    fn values_only() {
        let a = rand_hermitian(12, 85);
        let r = HermitianEigen::new()
            .nb(3)
            .vectors(false)
            .solve(&a)
            .unwrap();
        assert!(r.eigenvectors.is_none());
        assert_eq!(r.eigenvalues.len(), 12);
    }

    #[test]
    fn c32_end_to_end_cheev_equivalent() {
        // The cheev-equivalent solve: narrow a C64 Hermitian matrix to
        // C32, run the full generic pipeline (band reduction, chase,
        // real tridiagonal solve, fused back-transform) and check
        // against the f64 real-embedding oracle with f32-scaled
        // tolerances. `VerifyLevel::Full` exercises the T::EPS-scaled
        // built-in verification on the narrow path too.
        use tseig_matrix::{CMatrixG, C32};
        let n = 24;
        let a64 = rand_hermitian(n, 89);
        let a = CMatrixG::<C32>::from_cmatrix(&a64);
        let want = real_embedding_eigenvalues(&a);
        let r = HermitianEigen::new()
            .nb(5)
            .verify(VerifyLevel::Full)
            .solve(&a)
            .unwrap();
        assert!(
            norms::eigenvalue_distance(&r.eigenvalues, &want) < 1e-3,
            "C32 eigenvalues off the f64 oracle"
        );
        let z = r.eigenvectors.as_ref().expect("vectors");
        let res = hermitian_residual(&a, &r.eigenvalues, z);
        let uni = unitary_error(z);
        assert!(res < 500.0, "C32 residual {res}");
        assert!(uni < 500.0, "C32 unitarity {uni}");
        let v = r.diagnostics.verify.expect("verify report");
        assert!(v.residual <= VERIFY_BOUND && v.orthogonality <= VERIFY_BOUND);
    }

    #[test]
    fn c32_schedulers_bitwise_identical() {
        // The scheduler equivalence argument is element-type blind: the
        // C32 chase must be bit-identical under every scheduler too.
        use tseig_matrix::{CMatrixG, C32};
        let a = CMatrixG::<C32>::from_cmatrix(&rand_hermitian(26, 90));
        let serial = HermitianEigen::new().nb(5).solve(&a).unwrap();
        for s in [Scheduler::Static(3), Scheduler::Dynamic(2)] {
            let r = HermitianEigen::new().nb(5).scheduler(s).solve(&a).unwrap();
            assert_eq!(r.eigenvalues, serial.eigenvalues, "{s:?}");
        }
    }

    #[test]
    fn tiny_sizes() {
        for n in [1usize, 2, 3] {
            let a = rand_hermitian(n, 86 + n as u64);
            let r = HermitianEigen::new().nb(2).solve(&a).unwrap();
            assert_eq!(r.eigenvalues.len(), n);
            check(&a, &r, 500.0);
        }
    }
}
