//! Generalized Hermitian-definite eigenproblem `A x = lambda B x`
//! (`zhegv`/`chegv` equivalent), generic over the complex element width.
//!
//! Same reduction as the real driver (`dsygv` ITYPE=1), in complex
//! arithmetic:
//!
//! 1. `B = L L^H` (complex Cholesky, real positive pivots),
//! 2. `C = L^-1 A L^-H` — standard Hermitian with the pencil's
//!    (real) eigenvalues,
//! 3. [`crate::HermitianEigen`] two-stage solve on `C`,
//! 4. `x = L^-H y`; the eigenvectors are `B`-orthonormal:
//!    `X^H B X = I`.
//!
//! Ladder parity with `tseig-core`'s `solve_generalized`: both inputs
//! are screened (`screen_hermitian` — non-finite, non-hermitian, or
//! non-real-diagonal entries are located), each is scaled into the safe
//! norm window independently, Cholesky breakdown is retried on
//! `B + delta I` and recorded as [`Recovery::CholeskyShiftRetry`], an
//! ill-conditioned factor records [`Recovery::PencilSymmetrized`], and
//! opt-in verification checks the *pencil* residual and
//! `B`-orthonormality.
//!
//! The factorization and triangular solves here are scalar loops — the
//! pencil preamble is O(n^3) but a small constant next to the two-stage
//! solve it feeds, and stays allocation-light.

use crate::backtransform::HermScalar;
use crate::driver::{HermitianEigen, HermitianResult, VERIFY_BOUND};
use tseig_kernels::scaling::{safe_scale_factor, scale_cmatrix, screen_hermitian};
use tseig_matrix::diagnostics::{Recorder, Recovery, VerifyLevel, VerifyReport};
use tseig_matrix::{chaos, CMatrixG, ComplexScalar, Error, Result};

/// Diagonal-shift escalations after a Cholesky breakdown (same policy
/// as the real driver: rescue near-semidefinite `B`, reject genuinely
/// indefinite `B` with the original error).
const MAX_SHIFT_ATTEMPTS: usize = 3;

/// Complex Cholesky factorization `B = L L^H`, lower triangle referenced
/// and overwritten (strict upper zeroed). Pivots are real by hermiticity;
/// a non-positive pivot means `B` is not positive definite.
pub fn zpotrf_lower<T: ComplexScalar>(a: &mut CMatrixG<T>) -> Result<()> {
    assert_eq!(a.rows(), a.cols());
    let n = a.rows();
    if chaos::fire(chaos::Site::CholBreakdown) {
        return Err(Error::InvalidArgument(
            "matrix not positive definite (pivot -1.000e0 at 0) [chaos]".to_string(),
        ));
    }
    for j in 0..n {
        let mut s = a[(j, j)].re();
        for k in 0..j {
            s -= a[(j, k)].abs2();
        }
        if s <= 0.0 {
            return Err(Error::InvalidArgument(format!(
                "matrix not positive definite (pivot {s:.3e} at {j})"
            )));
        }
        let ljj = s.sqrt();
        a[(j, j)] = T::new(ljj, 0.0);
        for i in j + 1..n {
            let mut v = a[(i, j)];
            for k in 0..j {
                v -= a[(i, k)].mul_conj(a[(j, k)]);
            }
            a[(i, j)] = v.scale(1.0 / ljj);
        }
    }
    for j in 0..n {
        for i in 0..j {
            a[(i, j)] = T::ZERO;
        }
    }
    Ok(())
}

/// Solve `L X = B` (`conj_trans = false`) or `L^H X = B` (`true`) in
/// place; `L` lower triangular with real positive diagonal.
pub fn ztrsm_left_lower<T: ComplexScalar>(
    conj_trans: bool,
    m: usize,
    ncols: usize,
    l: &CMatrixG<T>,
    b: &mut [T],
    ldb: usize,
) {
    assert!(l.rows() >= m && l.cols() >= m);
    for j in 0..ncols {
        let col = &mut b[j * ldb..j * ldb + m];
        if conj_trans {
            // Backward substitution with L^H.
            for i in (0..m).rev() {
                let mut s = col[i];
                for r in i + 1..m {
                    s -= col[r].mul_conj(l[(r, i)]);
                }
                col[i] = s.scale(1.0 / l[(i, i)].re());
            }
        } else {
            // Forward substitution.
            for i in 0..m {
                let xi = col[i].scale(1.0 / l[(i, i)].re());
                col[i] = xi;
                for r in i + 1..m {
                    col[r] -= l[(r, i)] * xi;
                }
            }
        }
    }
}

/// Solve `X L^H = B` in place; `B` is `m x n` with `n = order(L)`.
pub fn ztrsm_right_lower_conjtrans<T: ComplexScalar>(
    m: usize,
    n: usize,
    l: &CMatrixG<T>,
    b: &mut [T],
    ldb: usize,
) {
    assert!(l.rows() >= n && l.cols() >= n);
    // (X L^H)[:, j] = sum_{k <= j} X[:, k] conj(L[j, k]) => forward over j.
    for j in 0..n {
        for k in 0..j {
            let ljk = l[(j, k)];
            if ljk.re() == 0.0 && ljk.im() == 0.0 {
                continue;
            }
            for i in 0..m {
                let t = b[i + k * ldb].mul_conj(ljk);
                b[i + j * ldb] -= t;
            }
        }
        let ljj = l[(j, j)].re();
        for v in b[j * ldb..j * ldb + m].iter_mut() {
            *v = v.scale(1.0 / ljj);
        }
    }
}

/// `C = L^-1 A L^-H` (`zhegst` ITYPE=1): the standard Hermitian matrix
/// with the pencil's eigenvalues. `A`'s lower triangle is referenced.
pub fn zhegst<T: ComplexScalar>(a: &CMatrixG<T>, l: &CMatrixG<T>) -> CMatrixG<T> {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    let mut c = a.clone();
    c.hermitize_from_lower();
    let ldc = c.ld().max(1);
    ztrsm_left_lower(false, n, n, l, c.as_mut_slice(), ldc);
    ztrsm_right_lower_conjtrans(n, n, l, c.as_mut_slice(), ldc);
    // Enforce exact hermiticity lost to rounding.
    for j in 0..n {
        for i in j + 1..n {
            let v = (c[(i, j)] + c[(j, i)].conj()).scale(0.5);
            c[(i, j)] = v;
            c[(j, i)] = v.conj();
        }
        let d = c[(j, j)].re();
        c[(j, j)] = T::new(d, 0.0);
    }
    c
}

/// Solve the Hermitian-definite pencil `A x = lambda B x` with the
/// two-stage pipeline configured in `opts` for the standard stage —
/// `CMatrix` gives the `zhegv`-equivalent solve, `CMatrixG<C32>` the
/// `chegv`-equivalent one. Returned eigenvectors satisfy `X^H B X = I`.
pub fn solve_generalized<T: HermScalar>(
    a: &CMatrixG<T>,
    b: &CMatrixG<T>,
    opts: &HermitianEigen,
) -> Result<HermitianResult<T>> {
    if a.rows() != a.cols() || b.rows() != b.cols() || a.rows() != b.rows() {
        return Err(Error::DimensionMismatch(format!(
            "pencil shapes {}x{} and {}x{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        )));
    }
    let n = a.rows();
    let anorm = screen_hermitian(a)?;
    let bnorm = screen_hermitian(b)?;
    let rec = Recorder::new();
    let sa = safe_scale_factor(anorm);
    let sb = safe_scale_factor(bnorm);

    // The pencil phases poll the lifecycle control between the standard
    // solve's own checkpoints.
    let ctrl = opts.control();
    ctrl.checkpoint()?;

    // 1. B = L L^H with the shifted-retry rung.
    let load_b = || {
        let mut l = b.clone();
        if let Some(s) = sb {
            scale_cmatrix(&mut l, s);
        }
        l
    };
    let mut l = load_b();
    if let Err(breakdown) = zpotrf_lower(&mut l) {
        let bscaled = bnorm * sb.unwrap_or(1.0);
        let mut shift = bscaled.max(1.0) * n as f64 * T::EPS;
        let mut rescued = None;
        for attempt in 1..=MAX_SHIFT_ATTEMPTS {
            l = load_b();
            for i in 0..n {
                let d = l[(i, i)].re() + shift;
                l[(i, i)] = T::new(d, 0.0);
            }
            if zpotrf_lower(&mut l).is_ok() {
                rescued = Some(attempt);
                break;
            }
            shift *= 100.0;
        }
        match rescued {
            Some(attempts) => rec.record(Recovery::CholeskyShiftRetry { shift, attempts }),
            None => return Err(breakdown),
        }
    }
    let mut dmin = f64::INFINITY;
    let mut dmax = 0.0f64;
    for i in 0..n {
        let d = l[(i, i)].re();
        dmin = dmin.min(d);
        dmax = dmax.max(d);
    }
    let cond = if dmin > 0.0 {
        (dmax / dmin).powi(2)
    } else {
        f64::INFINITY
    };
    if cond > 1.0 / T::EPS.sqrt() {
        rec.record(Recovery::PencilSymmetrized { cond });
    }

    // 2. C = L^-1 A L^-H (explicitly re-hermitized inside zhegst).
    ctrl.checkpoint()?;
    let mut ascaled = a.clone();
    if let Some(s) = sa {
        scale_cmatrix(&mut ascaled, s);
    }
    let c = zhegst(&ascaled, &l);

    // 3. Standard Hermitian two-stage solve.
    let mut result = opts.solve(&c)?;

    // 4. x = L^-H y, plus sqrt(sb) to restore X^H B X = I against the
    // unscaled B.
    ctrl.checkpoint()?;
    if let Some(z) = result.eigenvectors.as_mut() {
        let k = z.cols();
        let ldz = z.ld().max(1);
        ztrsm_left_lower(true, n, k, &l, z.as_mut_slice(), ldz);
        if let Some(s) = sb {
            let f = s.sqrt();
            for v in z.as_mut_slice() {
                *v = v.scale(f);
            }
        }
    }
    if sa.is_some() || sb.is_some() {
        let back = sb.unwrap_or(1.0) / sa.unwrap_or(1.0);
        for v in &mut result.eigenvalues {
            *v *= back;
        }
        result.diagnostics.scaled_by = Some(sa.unwrap_or(1.0) / sb.unwrap_or(1.0));
    }
    let pre = rec.take();
    if !pre.is_empty() {
        result.diagnostics.degraded = true;
        result.diagnostics.recoveries.splice(0..0, pre);
    }
    // Pencil-level verification replaces the inner (standard-C) report.
    let level = opts.verify_level();
    if level != VerifyLevel::Off {
        if let Some(z) = result.eigenvectors.as_ref() {
            let residual = generalized_residual(a, b, &result.eigenvalues, z);
            if residual > VERIFY_BOUND || residual.is_nan() {
                return Err(Error::VerificationFailed {
                    index: 0,
                    measure: "generalized residual".to_string(),
                    value: residual,
                    bound: VERIFY_BOUND,
                });
            }
            let orthogonality = if level == VerifyLevel::Full {
                let o = b_orthogonality(b, z);
                if o > VERIFY_BOUND || o.is_nan() {
                    return Err(Error::VerificationFailed {
                        index: 0,
                        measure: "B-orthogonality".to_string(),
                        value: o,
                        bound: VERIFY_BOUND,
                    });
                }
                o
            } else {
                0.0
            };
            result.diagnostics.verify = Some(VerifyReport {
                residual,
                orthogonality,
            });
        }
    }
    Ok(result)
}

/// Scaled pencil residual
/// `max_j ||A x_j - lambda_j B x_j|| / ((||A|| + |lambda_j| ||B||) n eps)`
/// with the element type's `eps`.
pub fn generalized_residual<T: ComplexScalar>(
    a: &CMatrixG<T>,
    b: &CMatrixG<T>,
    lambda: &[f64],
    x: &CMatrixG<T>,
) -> f64 {
    if a.cols() != x.rows() || b.cols() != x.rows() || x.cols() != lambda.len() {
        return f64::INFINITY;
    }
    let ax = a.multiply(x);
    let bx = b.multiply(x);
    let norm1 = |m: &CMatrixG<T>| {
        (0..m.cols())
            .map(|j| (0..m.rows()).map(|i| m[(i, j)].abs()).sum::<f64>())
            .fold(0.0f64, f64::max)
    };
    let na = norm1(a);
    let nb = norm1(b);
    let n = a.rows() as f64;
    let mut worst = 0.0f64;
    for (j, &lj) in lambda.iter().enumerate() {
        let mut num = 0.0f64;
        for i in 0..a.rows() {
            let diff = ax[(i, j)] - bx[(i, j)].scale(lj);
            num = num.max(diff.abs());
        }
        let den = (na + lj.abs() * nb).max(f64::MIN_POSITIVE) * n * T::EPS / 2.0;
        worst = worst.max(num / den);
    }
    worst
}

/// `||X^H B X - I||_max / (n eps)` with the element type's `eps`.
pub fn b_orthogonality<T: ComplexScalar>(b: &CMatrixG<T>, x: &CMatrixG<T>) -> f64 {
    if b.cols() != x.rows() {
        return f64::INFINITY;
    }
    let g = x.adjoint().multiply(&b.multiply(x));
    let k = x.cols();
    let mut worst = 0.0f64;
    for j in 0..k {
        for i in 0..k {
            let target = if i == j { 1.0 } else { 0.0 };
            worst = worst.max((g[(i, j)] - T::new(target, 0.0)).abs());
        }
    }
    worst / (x.rows() as f64 * T::EPS / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{hermitian_with_spectrum, rand_hermitian, real_embedding_eigenvalues};
    use tseig_matrix::{norms, CMatrix, C32, C64};

    /// Hermitian positive definite with spectrum in [1, 2].
    fn hpd(n: usize, seed: u64) -> CMatrix {
        let lambda: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 / n as f64).collect();
        hermitian_with_spectrum(&lambda, seed)
    }

    fn to_c32(a: &CMatrix) -> CMatrixG<C32> {
        CMatrixG::from_fn(a.rows(), a.cols(), |i, j| {
            C32::new(a[(i, j)].re(), a[(i, j)].im())
        })
    }

    /// Pencil oracle: eigenvalues of C = L^-1 A L^-H via the real
    /// embedding of C.
    fn oracle(a: &CMatrix, b: &CMatrix) -> Vec<f64> {
        let mut l = b.clone();
        zpotrf_lower(&mut l).unwrap();
        let c = zhegst(a, &l);
        real_embedding_eigenvalues(&c)
    }

    #[test]
    fn cholesky_reconstructs() {
        let n = 12;
        let b = hpd(n, 1);
        let mut l = b.clone();
        zpotrf_lower(&mut l).unwrap();
        let llh = l.multiply(&l.adjoint());
        for j in 0..n {
            for i in 0..n {
                assert!(
                    (llh[(i, j)] - b[(i, j)]).abs() < 1e-12 * n as f64,
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn rejects_indefinite() {
        let n = 5;
        let mut b = CMatrix::identity(n);
        b[(3, 3)] = C64::new(-1.0, 0.0);
        assert!(zpotrf_lower(&mut b.clone()).is_err());
        let a = rand_hermitian(n, 2);
        assert!(solve_generalized(&a, &b, &HermitianEigen::new()).is_err());
    }

    #[test]
    fn reduces_to_standard_when_b_is_identity() {
        let n = 20;
        let a = rand_hermitian(n, 3);
        let id = CMatrix::identity(n);
        let gen_r = solve_generalized(&a, &id, &HermitianEigen::new().nb(4)).unwrap();
        let std_r = HermitianEigen::new().nb(4).solve(&a).unwrap();
        assert!(norms::eigenvalue_distance(&gen_r.eigenvalues, &std_r.eigenvalues) < 1e-10);
    }

    #[test]
    fn zhegv_matches_oracle_c64() {
        let n = 16;
        let a = rand_hermitian(n, 4);
        let b = hpd(n, 5);
        let r = solve_generalized(&a, &b, &HermitianEigen::new().nb(4)).unwrap();
        let want = oracle(&a, &b);
        assert!(
            norms::eigenvalue_distance(&r.eigenvalues, &want) < 1e-8,
            "\n got {:?}\nwant {want:?}",
            r.eigenvalues
        );
        let x = r.eigenvectors.as_ref().unwrap();
        assert!(generalized_residual(&a, &b, &r.eigenvalues, x) < 1000.0);
        assert!(b_orthogonality(&b, x) < 1000.0);
    }

    #[test]
    fn chegv_matches_oracle_c32() {
        let n = 12;
        let a64 = rand_hermitian(n, 6);
        let b64 = hpd(n, 7);
        let a = to_c32(&a64);
        let b = to_c32(&b64);
        let r = solve_generalized(&a, &b, &HermitianEigen::new().nb(4)).unwrap();
        // Oracle in f64 on the narrowed data.
        let a_back = CMatrix::from_fn(n, n, |i, j| C64::new(a[(i, j)].re(), a[(i, j)].im()));
        let b_back = CMatrix::from_fn(n, n, |i, j| C64::new(b[(i, j)].re(), b[(i, j)].im()));
        let want = oracle(&a_back, &b_back);
        for (got, want) in r.eigenvalues.iter().zip(&want) {
            assert!(
                (got - want).abs() < 1e-3,
                "c32 eigenvalue {got} vs oracle {want}"
            );
        }
        let x = r.eigenvectors.as_ref().unwrap();
        assert!(generalized_residual(&a, &b, &r.eigenvalues, x) < 1000.0);
        assert!(b_orthogonality(&b, x) < 1000.0);
    }

    #[test]
    fn verify_checks_the_pencil() {
        let n = 14;
        let a = rand_hermitian(n, 8);
        let b = hpd(n, 9);
        let r = solve_generalized(
            &a,
            &b,
            &HermitianEigen::new().nb(4).verify(VerifyLevel::Full),
        )
        .unwrap();
        let rep = r.diagnostics.verify.expect("verify requested");
        assert!(rep.residual < 1000.0 && rep.orthogonality < 1000.0);
    }

    #[test]
    fn near_semidefinite_b_is_rescued_by_shift() {
        let n = 10;
        let a = rand_hermitian(n, 10);
        let lambda: Vec<f64> = (0..n)
            .map(|i| if i == 0 { -1e-14 } else { 1.0 + i as f64 })
            .collect();
        let b = hermitian_with_spectrum(&lambda, 11);
        let r = solve_generalized(&a, &b, &HermitianEigen::new().nb(4)).unwrap();
        assert!(r.diagnostics.degraded);
        assert!(
            r.diagnostics
                .recoveries
                .iter()
                .any(|x| matches!(x, Recovery::CholeskyShiftRetry { .. })),
            "{:?}",
            r.diagnostics.recoveries
        );
    }

    #[test]
    fn screening_locates_offenders() {
        let n = 6;
        let a = rand_hermitian(n, 12);
        let b = hpd(n, 13);
        let mut bad = a.clone();
        bad[(2, 4)] = C64::new(f64::NAN, 0.0);
        match solve_generalized(&bad, &b, &HermitianEigen::new()) {
            Err(Error::InvalidData { .. }) => {}
            other => panic!("wrong screening result: {other:?}"),
        }
        let mut bad_b = b.clone();
        bad_b[(1, 0)] += C64::new(10.0, 0.0); // breaks hermiticity
        match solve_generalized(&a, &bad_b, &HermitianEigen::new()) {
            Err(Error::InvalidData { .. }) => {}
            other => panic!("wrong screening result: {other:?}"),
        }
    }
}
