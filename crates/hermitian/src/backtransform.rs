//! Hermitian back-transformation `Z = Q1 (Q2 (D E))`.
//!
//! Mirror of the real diamond-blocked scheme (`tseig_core::backtransform`)
//! in complex arithmetic, with the extra unitary diagonal `D` (the phase
//! fold from stage 2) applied first: the real tridiagonal eigenvectors
//! `E` become eigenvectors of the complex tridiagonal as `D E`, then the
//! chase and band reflectors are applied exactly like the real case —
//! the commutation argument for the diamond reordering only involves row
//! supports, so it transfers verbatim.
//!
//! Like the real pipeline, [`apply_q`] fuses the whole chain into **one
//! pass over the eigenvector matrix**: the columns of `E` are split into
//! cache-sized panels and each panel applies `D`, every diamond of the
//! `Q2` sequence, and then the reverse `Q1` chain while it is
//! cache-resident — no barrier between the three stages, and all
//! per-panel workspace comes from a grow-only thread-local scratch so
//! the allocator never runs inside the panel loop. Since `zlarfb_left`
//! is built on the packed complex `zgemm`, all the Level-3 flops of the
//! back-transform run through the same generic packed engine as the
//! real driver. [`apply_phases`], [`apply_q2`] and [`apply_q1`] remain
//! as the unfused pieces for tests and benches.

use crate::ckernels::{zlarf_left, zlarfb_left, zlarft, Op};
use crate::stage1::Q1PanelC;
use crate::stage2::V2SetC;
use rayon::prelude::*;
use std::cell::RefCell;
use tseig_kernels::blas3::engine::GemmScalar;
use tseig_matrix::{CMatrixG, ComplexScalar, C32, C64};

/// Column-panel width for the cache-local distribution of `E`. Complex
/// elements are twice the size of real ones, so this is half the real
/// pipeline's `DEFAULT_PANEL_COLS` for the same cache footprint.
pub const DEFAULT_PANEL_COLS: usize = 64;

/// A complex element type the Hermitian driver can run end-to-end: it
/// must go through the packed GEMM engine (`GemmScalar`) and bring a
/// per-thread grow-only back-transform scratch buffer. Thread-locals
/// cannot be generic, so each width owns a concrete static and exposes
/// it through [`HermScalar::with_bt_scratch`].
pub trait HermScalar: ComplexScalar + GemmScalar {
    /// Run `f` on this type's per-thread back-transform workspace
    /// (grow-only, reused across panels and across calls).
    fn with_bt_scratch<R>(f: impl FnOnce(&mut Vec<Self>) -> R) -> R;
}

thread_local! {
    static BT_SCRATCH_C64: RefCell<Vec<C64>> = const { RefCell::new(Vec::new()) };
    static BT_SCRATCH_C32: RefCell<Vec<C32>> = const { RefCell::new(Vec::new()) };
}

impl HermScalar for C64 {
    fn with_bt_scratch<R>(f: impl FnOnce(&mut Vec<Self>) -> R) -> R {
        BT_SCRATCH_C64.with(|s| f(&mut s.borrow_mut()))
    }
}

impl HermScalar for C32 {
    fn with_bt_scratch<R>(f: impl FnOnce(&mut Vec<Self>) -> R) -> R {
        BT_SCRATCH_C32.with(|s| f(&mut s.borrow_mut()))
    }
}

/// Scale row `j` of `e` by `phases[j]` (apply `D`).
pub fn apply_phases<T: ComplexScalar>(phases: &[T], e: &mut CMatrixG<T>) {
    let n = e.rows();
    assert_eq!(phases.len(), n);
    for j in 0..e.cols() {
        let col = e.col_mut(j);
        for i in 0..n {
            col[i] *= phases[i];
        }
    }
}

struct DiamondC<T: ComplexScalar> {
    r0: usize,
    v: CMatrixG<T>,
    t: Vec<T>,
}

fn build_diamonds<T: ComplexScalar>(v2: &V2SetC<T>, ell: usize) -> Vec<DiamondC<T>> {
    let ell = ell.max(1);
    let nsweeps = v2.sweep_count();
    let mut out = Vec::new();
    if nsweeps == 0 {
        return out;
    }
    let nblocks = nsweeps.div_ceil(ell);
    for blk in (0..nblocks).rev() {
        let s0 = blk * ell;
        let s1 = (s0 + ell).min(nsweeps);
        let max_depth = (s0..s1).map(|s| v2.sweep(s).len()).max().unwrap_or(0);
        for k in 0..max_depth {
            let members: Vec<&(usize, T, Vec<T>)> = (s0..s1)
                .filter_map(|s| v2.sweep(s).get(k))
                .filter(|r| !r.2.is_empty())
                .collect();
            if members.is_empty() {
                continue;
            }
            let r0 = members[0].0;
            let rend = members.iter().map(|r| r.0 + r.2.len()).max().unwrap();
            let height = rend - r0;
            let kb = members.len();
            let mut v = CMatrixG::zeros(height, kb);
            let mut tau = vec![T::ZERO; kb];
            for (col, r) in members.iter().enumerate() {
                let off = r.0 - r0;
                for (i, &val) in r.2.iter().enumerate() {
                    v[(off + i, col)] = val;
                }
                tau[col] = r.1;
            }
            let mut t = vec![T::ZERO; kb * kb];
            zlarft(height, kb, v.as_slice(), height, &tau, &mut t, kb);
            out.push(DiamondC { r0, v, t });
        }
    }
    out
}

/// Workspace length one panel of `cols` columns needs: the
/// `2 * k * cols` `zlarfb_left` scratch of the widest block in either
/// half of the chain.
fn scratch_len<T: ComplexScalar>(
    diamonds: &[DiamondC<T>],
    q1: &[Q1PanelC<T>],
    cols: usize,
) -> usize {
    let kd = diamonds.iter().map(|d| d.v.cols()).max().unwrap_or(0);
    let kq = q1.iter().map(|p| p.v.cols()).max().unwrap_or(0);
    2 * kd.max(kq) * cols
}

/// The shared panel pipeline: parallel over column panels of `e`, each
/// panel applies `D` (when given), every diamond (the `Q2` sequence)
/// and then the reverse `Q1` chain while cache-resident. Any piece may
/// be empty.
fn apply_pipeline<T: HermScalar>(
    phases: Option<&[T]>,
    diamonds: &[DiamondC<T>],
    q1: &[Q1PanelC<T>],
    e: &mut CMatrixG<T>,
    panel_cols: usize,
) {
    if e.cols() == 0 || (phases.is_none() && diamonds.is_empty() && q1.is_empty()) {
        return;
    }
    let pc = if panel_cols == 0 {
        DEFAULT_PANEL_COLS
    } else {
        panel_cols
    };
    let nrows = e.rows();
    let ldc = e.ld();
    let need = scratch_len(diamonds, q1, pc.min(e.cols()));
    e.as_mut_slice().par_chunks_mut(pc * ldc).for_each(|panel| {
        let cols = panel.len() / ldc;
        T::with_bt_scratch(|work| {
            if work.len() < need {
                work.resize(need, T::ZERO);
            }
            if let Some(d) = phases {
                for j in 0..cols {
                    let col = &mut panel[j * ldc..j * ldc + nrows];
                    for (v, &p) in col.iter_mut().zip(d) {
                        *v *= p;
                    }
                }
            }
            for d in diamonds {
                let rows = d.v.rows();
                zlarfb_left(
                    Op::No,
                    rows,
                    cols,
                    d.v.cols(),
                    d.v.as_slice(),
                    rows,
                    &d.t,
                    d.v.cols(),
                    &mut panel[d.r0..],
                    ldc,
                    &mut work[..2 * d.v.cols() * cols],
                );
            }
            for p in q1.iter().rev() {
                let rows = p.v.rows();
                zlarfb_left(
                    Op::No,
                    rows,
                    cols,
                    p.v.cols(),
                    p.v.as_slice(),
                    rows,
                    &p.t,
                    p.v.cols(),
                    &mut panel[p.r0..],
                    ldc,
                    &mut work[..2 * p.v.cols() * cols],
                );
            }
        });
    });
}

/// Fused single-pass back-transformation `E <- Q1 Q2 D E`: per column
/// panel, the phase fold, the full diamond sequence and then the
/// reverse `Q1` chain all run while the panel is cache-resident — one
/// pass over the eigenvector matrix instead of the three that separate
/// [`apply_phases`] + [`apply_q2`] + [`apply_q1`] calls would make,
/// with no synchronization barrier between the stages (the panels are
/// fully independent).
pub fn apply_q<T: HermScalar>(
    v2: &V2SetC<T>,
    panels: &[Q1PanelC<T>],
    phases: Option<&[T]>,
    e: &mut CMatrixG<T>,
    ell: usize,
    panel_cols: usize,
) {
    let n = v2.n();
    assert_eq!(e.rows(), n, "E must have n rows");
    if let Some(d) = phases {
        assert_eq!(d.len(), n, "D must have n phases");
    }
    let diamonds = if v2.sweep_count() == 0 {
        Vec::new()
    } else {
        build_diamonds(v2, ell.max(1))
    };
    apply_pipeline(phases, &diamonds, panels, e, panel_cols);
}

/// `E <- Q2 E` with diamond-blocked complex reflectors, parallel over
/// column panels.
pub fn apply_q2<T: HermScalar>(v2: &V2SetC<T>, e: &mut CMatrixG<T>, ell: usize, panel_cols: usize) {
    let n = v2.n();
    assert_eq!(e.rows(), n);
    if e.cols() == 0 || v2.sweep_count() == 0 {
        return;
    }
    let diamonds = build_diamonds(v2, ell.max(1));
    apply_pipeline(None, &diamonds, &[], e, panel_cols);
}

/// Naive reference `E <- Q2 E`, reflectors one at a time in exact
/// reverse chase order (test oracle for the diamond reordering).
pub fn apply_q2_naive<T: ComplexScalar>(v2: &V2SetC<T>, e: &mut CMatrixG<T>) {
    let n = v2.n();
    assert_eq!(e.rows(), n);
    let ncols = e.cols();
    let ldc = e.ld();
    let mut work = vec![T::ZERO; ncols];
    for s in (0..v2.sweep_count()).rev() {
        for (r0, tau, v) in v2.sweep(s).iter().rev() {
            if v.is_empty() {
                continue;
            }
            zlarf_left(
                v,
                *tau,
                v.len(),
                ncols,
                &mut e.as_mut_slice()[*r0..],
                ldc,
                &mut work,
            );
        }
    }
}

/// `G <- Q1 G`: stage-1 panels in reverse order, parallel over column
/// panels.
pub fn apply_q1<T: HermScalar>(panels: &[Q1PanelC<T>], g: &mut CMatrixG<T>, panel_cols: usize) {
    apply_pipeline(None, &[], panels, g, panel_cols);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage1::he2hb;
    use crate::stage2::reduce;
    use crate::validate::{rand_hermitian, unitary_error};
    use tseig_matrix::CMatrix;

    fn banded(n: usize, b: usize, seed: u64) -> CMatrix {
        let a = rand_hermitian(n, seed);
        let mut out = CMatrix::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                if i.abs_diff(j) <= b {
                    out[(i, j)] = a[(i, j)];
                }
            }
        }
        out.hermitize_from_lower();
        out
    }

    #[test]
    fn diamond_matches_naive() {
        for (n, b, seed) in [(14, 3, 70), (20, 4, 71)] {
            let band = banded(n, b, seed);
            let r = reduce(band, b);
            let e0 = {
                let re = tseig_matrix::gen::random_symmetric(n, seed + 5);
                CMatrix::from_real(&re)
            };
            let mut naive = e0.clone();
            apply_q2_naive(&r.v2, &mut naive);
            for ell in [1usize, 2, 4, 16] {
                let mut fast = e0.clone();
                apply_q2(&r.v2, &mut fast, ell, 5);
                assert!(
                    fast.max_diff(&naive) < 1e-11,
                    "diamond != naive (n={n}, b={b}, ell={ell})"
                );
            }
        }
    }

    #[test]
    fn q1_is_unitary_application() {
        let n = 18;
        let a = rand_hermitian(n, 72);
        let bf = he2hb(&a, 4);
        let mut q = CMatrix::identity(n);
        apply_q1(&bf.panels, &mut q, 7);
        assert!(unitary_error(&q) < 200.0);
        // Q1 B Q1^H == A.
        let recon = q.multiply(&bf.band).multiply(&q.adjoint());
        assert!(recon.max_diff(&a) < 1e-10 * n as f64);
    }

    #[test]
    fn fused_apply_q_matches_unfused_chain() {
        // The fused one-pass D + Q2 + Q1 against the unfused trio
        // (naive Level-2 Q2 for the reflector ordering, serial Q1),
        // across panel widths, with and without the phase fold.
        use tseig_matrix::c64;
        for (n, b, seed) in [(22, 3, 90), (31, 5, 91)] {
            let band = banded(n, b, seed);
            let bf = he2hb(&band, b);
            let chase = reduce(bf.band.clone(), b);
            let e0 = {
                let re = tseig_matrix::gen::random_symmetric(n, seed + 7);
                CMatrix::from_real(&re)
            };
            let phases: Vec<_> = (0..n)
                .map(|i| {
                    let th = 0.37 * i as f64;
                    c64(th.cos(), th.sin())
                })
                .collect();

            let mut want = e0.clone();
            apply_phases(&phases, &mut want);
            apply_q2_naive(&chase.v2, &mut want);
            apply_q1(&bf.panels, &mut want, n + 1); // serial: one panel

            for pc in [1usize, 5, 0] {
                let mut fused = e0.clone();
                apply_q(&chase.v2, &bf.panels, Some(&phases), &mut fused, 3, pc);
                assert!(
                    fused.max_diff(&want) < 1e-11,
                    "fused != D + naive Q2 + serial Q1 (n={n}, b={b}, pc={pc})"
                );
            }

            // Without phases the fused pass is just Q1 Q2.
            let mut want2 = e0.clone();
            apply_q2(&chase.v2, &mut want2, 3, 0);
            apply_q1(&bf.panels, &mut want2, 0);
            let mut fused2 = e0.clone();
            apply_q(&chase.v2, &bf.panels, None, &mut fused2, 3, 0);
            assert!(fused2.max_diff(&want2) < 1e-11);
        }
    }

    #[test]
    fn phases_scale_rows() {
        use tseig_matrix::c64;
        let mut e = CMatrix::identity(3);
        let p = [c64(0.0, 1.0), c64(1.0, 0.0), c64(-1.0, 0.0)];
        apply_phases(&p, &mut e);
        assert_eq!(e[(0, 0)], c64(0.0, 1.0));
        assert_eq!(e[(2, 2)], c64(-1.0, 0.0));
    }
}
