//! Hermitian back-transformation `Z = Q1 (Q2 (D E))`.
//!
//! Mirror of the real diamond-blocked scheme (`tseig_core::backtransform`)
//! in complex arithmetic, with the extra unitary diagonal `D` (the phase
//! fold from stage 2) applied first: the real tridiagonal eigenvectors
//! `E` become eigenvectors of the complex tridiagonal as `D E`, then the
//! chase and band reflectors are applied exactly like the real case —
//! the commutation argument for the diamond reordering only involves row
//! supports, so it transfers verbatim.

use crate::ckernels::{zlarf_left, zlarfb_left, zlarft, Op};
use crate::stage1::Q1PanelC;
use crate::stage2::V2SetC;
use rayon::prelude::*;
use tseig_matrix::{CMatrix, C64};

/// Scale row `j` of `e` by `phases[j]` (apply `D`).
pub fn apply_phases(phases: &[C64], e: &mut CMatrix) {
    let n = e.rows();
    assert_eq!(phases.len(), n);
    for j in 0..e.cols() {
        let col = e.col_mut(j);
        for i in 0..n {
            col[i] *= phases[i];
        }
    }
}

struct DiamondC {
    r0: usize,
    v: CMatrix,
    t: Vec<C64>,
}

fn build_diamonds(v2: &V2SetC, ell: usize) -> Vec<DiamondC> {
    let ell = ell.max(1);
    let nsweeps = v2.sweep_count();
    let mut out = Vec::new();
    if nsweeps == 0 {
        return out;
    }
    let nblocks = nsweeps.div_ceil(ell);
    for blk in (0..nblocks).rev() {
        let s0 = blk * ell;
        let s1 = (s0 + ell).min(nsweeps);
        let max_depth = (s0..s1).map(|s| v2.sweep(s).len()).max().unwrap_or(0);
        for k in 0..max_depth {
            let members: Vec<&(usize, C64, Vec<C64>)> = (s0..s1)
                .filter_map(|s| v2.sweep(s).get(k))
                .filter(|r| !r.2.is_empty())
                .collect();
            if members.is_empty() {
                continue;
            }
            let r0 = members[0].0;
            let rend = members.iter().map(|r| r.0 + r.2.len()).max().unwrap();
            let height = rend - r0;
            let kb = members.len();
            let mut v = CMatrix::zeros(height, kb);
            let mut tau = vec![C64::ZERO; kb];
            for (col, r) in members.iter().enumerate() {
                let off = r.0 - r0;
                for (i, &val) in r.2.iter().enumerate() {
                    v[(off + i, col)] = val;
                }
                tau[col] = r.1;
            }
            let mut t = vec![C64::ZERO; kb * kb];
            zlarft(height, kb, v.as_slice(), height, &tau, &mut t, kb);
            out.push(DiamondC { r0, v, t });
        }
    }
    out
}

/// `E <- Q2 E` with diamond-blocked complex reflectors, parallel over
/// column panels.
pub fn apply_q2(v2: &V2SetC, e: &mut CMatrix, ell: usize, panel_cols: usize) {
    let n = v2.n();
    assert_eq!(e.rows(), n);
    if e.cols() == 0 || v2.sweep_count() == 0 {
        return;
    }
    let diamonds = build_diamonds(v2, ell.max(1));
    let pc = if panel_cols == 0 { 64 } else { panel_cols };
    let ldc = e.ld();
    let max_k = diamonds.iter().map(|d| d.v.cols()).max().unwrap_or(0);
    e.as_mut_slice().par_chunks_mut(pc * ldc).for_each(|panel| {
        let cols = panel.len() / ldc;
        let mut work = vec![C64::ZERO; 2 * max_k * cols];
        for d in &diamonds {
            let rows = d.v.rows();
            zlarfb_left(
                Op::No,
                rows,
                cols,
                d.v.cols(),
                d.v.as_slice(),
                rows,
                &d.t,
                d.v.cols(),
                &mut panel[d.r0..],
                ldc,
                &mut work,
            );
        }
    });
}

/// Naive reference `E <- Q2 E`, reflectors one at a time in exact
/// reverse chase order (test oracle for the diamond reordering).
pub fn apply_q2_naive(v2: &V2SetC, e: &mut CMatrix) {
    let n = v2.n();
    assert_eq!(e.rows(), n);
    let ncols = e.cols();
    let ldc = e.ld();
    let mut work = vec![C64::ZERO; ncols];
    for s in (0..v2.sweep_count()).rev() {
        for (r0, tau, v) in v2.sweep(s).iter().rev() {
            if v.is_empty() {
                continue;
            }
            zlarf_left(
                v,
                *tau,
                v.len(),
                ncols,
                &mut e.as_mut_slice()[*r0..],
                ldc,
                &mut work,
            );
        }
    }
}

/// `G <- Q1 G`: stage-1 panels in reverse order, parallel over column
/// panels.
pub fn apply_q1(panels: &[Q1PanelC], g: &mut CMatrix, panel_cols: usize) {
    if g.cols() == 0 || panels.is_empty() {
        return;
    }
    let pc = if panel_cols == 0 { 64 } else { panel_cols };
    let ldc = g.ld();
    let max_k = panels.iter().map(|p| p.v.cols()).max().unwrap_or(0);
    g.as_mut_slice().par_chunks_mut(pc * ldc).for_each(|panel| {
        let cols = panel.len() / ldc;
        let mut work = vec![C64::ZERO; 2 * max_k * cols];
        for p in panels.iter().rev() {
            let rows = p.v.rows();
            zlarfb_left(
                Op::No,
                rows,
                cols,
                p.v.cols(),
                p.v.as_slice(),
                rows,
                &p.t,
                p.v.cols(),
                &mut panel[p.r0..],
                ldc,
                &mut work,
            );
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage1::he2hb;
    use crate::stage2::reduce;
    use crate::validate::{rand_hermitian, unitary_error};

    fn banded(n: usize, b: usize, seed: u64) -> CMatrix {
        let a = rand_hermitian(n, seed);
        let mut out = CMatrix::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                if i.abs_diff(j) <= b {
                    out[(i, j)] = a[(i, j)];
                }
            }
        }
        out.hermitize_from_lower();
        out
    }

    #[test]
    fn diamond_matches_naive() {
        for (n, b, seed) in [(14, 3, 70), (20, 4, 71)] {
            let band = banded(n, b, seed);
            let r = reduce(band, b);
            let e0 = {
                let re = tseig_matrix::gen::random_symmetric(n, seed + 5);
                CMatrix::from_real(&re)
            };
            let mut naive = e0.clone();
            apply_q2_naive(&r.v2, &mut naive);
            for ell in [1usize, 2, 4, 16] {
                let mut fast = e0.clone();
                apply_q2(&r.v2, &mut fast, ell, 5);
                assert!(
                    fast.max_diff(&naive) < 1e-11,
                    "diamond != naive (n={n}, b={b}, ell={ell})"
                );
            }
        }
    }

    #[test]
    fn q1_is_unitary_application() {
        let n = 18;
        let a = rand_hermitian(n, 72);
        let bf = he2hb(&a, 4);
        let mut q = CMatrix::identity(n);
        apply_q1(&bf.panels, &mut q, 7);
        assert!(unitary_error(&q) < 200.0);
        // Q1 B Q1^H == A.
        let recon = q.multiply(&bf.band).multiply(&q.adjoint());
        assert!(recon.max_diff(&a) < 1e-10 * n as f64);
    }

    #[test]
    fn phases_scale_rows() {
        use tseig_matrix::c64;
        let mut e = CMatrix::identity(3);
        let p = [c64(0.0, 1.0), c64(1.0, 0.0), c64(-1.0, 0.0)];
        apply_phases(&p, &mut e);
        assert_eq!(e[(0, 0)], c64(0.0, 1.0));
        assert_eq!(e[(2, 2)], c64(-1.0, 0.0));
    }
}
