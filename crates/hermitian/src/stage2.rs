//! Stage 2 (Hermitian): band to tridiagonal bulge chasing.
//!
//! The same three-kernel column-wise chase as the real pipeline
//! ([`zhbceu`]/[`zhbrel`]/[`zhblru`], delayed annihilation), in complex
//! arithmetic. `zlarfg` makes every annihilation result *real*, so the
//! final tridiagonal is real up to the entries no sweep ever touches;
//! [`phase_fold`] rotates those real too with a unitary diagonal that is
//! handed to the back-transformation.
//!
//! The band is kept in the dense Hermitian matrix produced by stage 1;
//! every kernel works on a copied square or rectangular window (the
//! cache-resident blocks of the paper), then writes it back and mirrors
//! the conjugate triangle so the dense matrix stays exactly Hermitian.
//!
//! Execution mirrors the real `tseig_core::stage2`: [`reduce`] runs the
//! kernel sequence serially, [`reduce_scheduled`] runs the same `(sweep,
//! depth)` task set on the dynamic superscalar runtime or the static
//! pipelined scheduler of `tseig-runtime`, with dependences inferred
//! from the exact diagonal-index interval each task touches — the chase
//! geometry is identical to the real one, so the region protocol
//! transfers verbatim ([`chase_task_specs`] exports it for `xtask
//! graphcheck`), and every schedule is bit-identical to the serial order.

use crate::ckernels::{zlarf_left, zlarf_right, zlarfg};
use std::sync::Arc;
use tseig_matrix::{CMatrixG, ComplexScalar, Ctrl, SymTridiagonal, C64};
use tseig_runtime::verify::TaskSpec;
use tseig_runtime::{shadow, Access, DataCell, Priority, Region, Runtime, TaskGraph};

/// One stored stage-2 reflector: `(start row, tau, v)` with `v[0] == 1`.
type ReflectorC<T = C64> = (usize, T, Vec<T>);

/// Number of reflectors sweep `s` *stores* (same formula as the real
/// chase: reflector `k` exists while `s + 1 + k*nb <= n - 2`). Free
/// function because the task-geometry helpers below are element-type
/// independent and must not pick a `V2SetC<T>` instantiation.
pub fn depth_of_sweep(n: usize, nb: usize, s: usize) -> usize {
    if s + 2 >= n {
        return 0;
    }
    (n - 2 - s - 1) / nb + 1
}

/// Number of kernel *tasks* sweep `s` runs; one more than
/// [`depth_of_sweep`] when the last bulge block has a single row (the
/// right-application still runs, no reflector comes out).
pub fn steps_of_sweep(n: usize, nb: usize, s: usize) -> usize {
    if s + 2 >= n {
        return 0;
    }
    (n - 2 - s) / nb + 1
}

/// The complex reflector set of the chase, indexed `(sweep, depth)`.
/// Reflector `(s, k)` starts at global row `s + 1 + k * nb` (clamped at
/// the matrix edge) — the same geometry as the real `V2Set`.
pub struct V2SetC<T: ComplexScalar = C64> {
    n: usize,
    nb: usize,
    sweeps: Vec<Vec<ReflectorC<T>>>,
}

impl<T: ComplexScalar> V2SetC<T> {
    fn new(n: usize, nb: usize) -> Self {
        let nsweeps = n.saturating_sub(2);
        let mut sweeps = Vec::with_capacity(nsweeps);
        for s in 0..nsweeps {
            let depth = depth_of_sweep(n, nb, s);
            sweeps.push(vec![(0usize, T::ZERO, Vec::new()); depth]);
        }
        V2SetC { n, nb, sweeps }
    }

    pub fn n(&self) -> usize {
        self.n
    }

    pub fn nb(&self) -> usize {
        self.nb
    }

    pub fn sweep_count(&self) -> usize {
        self.sweeps.len()
    }

    pub fn sweep(&self, s: usize) -> &[ReflectorC<T>] {
        &self.sweeps[s]
    }

    /// Total count of non-trivial generated reflectors (diagnostics).
    pub fn reflector_count(&self) -> usize {
        self.sweeps
            .iter()
            .map(|s| s.iter().filter(|(_, _, v)| !v.is_empty()).count())
            .sum()
    }

    fn store(&mut self, s: usize, k: usize, start: usize, tau: T, v: Vec<T>) {
        self.sweeps[s][k] = (start, tau, v);
    }
}

/// Result of the Hermitian chase: real tridiagonal + reflectors + the
/// unitary diagonal phases folded out of the off-diagonals. The
/// tridiagonal is always `f64` — the real solver downstream runs at
/// full precision regardless of the complex element width.
pub struct ChaseResultC<T: ComplexScalar = C64> {
    pub tridiagonal: SymTridiagonal,
    pub v2: V2SetC<T>,
    /// `phases[j]` scales row `j` of the real tridiagonal eigenvectors:
    /// eigenvectors of the complex tridiagonal are `diag(phases) * E`.
    pub phases: Vec<T>,
}

/// Band entries of a block with rows `[.., r1]`, columns `[c0, ..]`
/// (`c0 <= r1`) occupy exactly the diagonal index interval `[c0, r1]` —
/// the Hermitian mirror `(j, i)` of an entry `(i, j)` lands in the same
/// interval, so one touch covers both triangles. Every kernel below
/// reports its block through this before accessing the dense matrix; a
/// task reaching outside its declared span fails loudly in debug builds.
fn touch_band(c0: usize, r1: usize, access: Access) {
    shadow::touch(BAND_SPACE, c0 as u64, r1 as u64 + 1, access);
}

/// Kernel 1 (`zHBCEU`): start sweep `s` — annihilate column `s` below
/// the first sub-diagonal (to a *real* `beta`, courtesy of `zlarfg`) and
/// update the symmetric diamond block two-sided. Returns the generated
/// reflector `(start_row, tau, v)`.
pub fn zhbceu<T: ComplexScalar>(a: &mut CMatrixG<T>, s: usize, b: usize) -> ReflectorC<T> {
    let n = a.rows();
    let r0 = s + 1;
    let r1 = (s + b).min(n - 1);
    let l = r1 - r0 + 1;
    // Column s (and its conjugate mirror) is gathered and rewritten.
    touch_band(s, r1, Access::Write);
    let mut v = vec![T::ZERO; l];
    for i in 0..l {
        v[i] = a[(r0 + i, s)];
    }
    let (beta, tau) = {
        let (head, tail) = v.split_at_mut(1);
        zlarfg(head[0], tail)
    };
    v[0] = T::ONE;
    a[(r0, s)] = T::new(beta, 0.0);
    a[(s, r0)] = T::new(beta, 0.0);
    for i in 1..l {
        a[(r0 + i, s)] = T::ZERO;
        a[(s, r0 + i)] = T::ZERO;
    }
    two_sided_window(a, r0, l, &v, tau);
    (r0, tau, v)
}

/// Kernel 2 (`zHBREL`): chase step — apply the previous reflector from
/// the right to the sub-band block below it (creating the bulge),
/// annihilate **only the bulge's first column** (delayed annihilation)
/// and left-update the remaining columns while the block is cache-hot.
/// Returns the new reflector, or `None` when the chase ran off the
/// matrix edge.
pub fn zhbrel<T: ComplexScalar>(
    a: &mut CMatrixG<T>,
    b: usize,
    prev: (usize, T, &[T]),
) -> Option<ReflectorC<T>> {
    let n = a.rows();
    let (pr0, ptau, pv) = prev;
    let pl = pv.len();
    let br0 = pr0 + pl;
    if br0 >= n {
        return None;
    }
    let br1 = (br0 + b - 1).min(n - 1);
    let rl = br1 - br0 + 1;
    // Copy block A[br0..=br1, pr0..pr0+pl] (write-back is reported by
    // `write_back_rect`).
    touch_band(pr0, br1, Access::Read);
    let mut blk = vec![T::ZERO; rl * pl];
    for j in 0..pl {
        for i in 0..rl {
            blk[i + j * rl] = a[(br0 + i, pr0 + j)];
        }
    }
    let mut work = vec![T::ZERO; rl.max(pl)];
    // Right-apply the previous reflector (creates the bulge).
    zlarf_right(pv, ptau, rl, pl, &mut blk, rl, &mut work);
    if rl < 2 {
        write_back_rect(a, br0, rl, pr0, pl, &blk);
        return None;
    }
    // Annihilate the bulge's first column (delayed annihilation).
    let mut nv = vec![T::ZERO; rl];
    nv.copy_from_slice(&blk[..rl]);
    let (nbeta, ntau) = {
        let (head, tail) = nv.split_at_mut(1);
        zlarfg(head[0], tail)
    };
    nv[0] = T::ONE;
    blk[0] = T::new(nbeta, 0.0);
    blk[1..rl].fill(T::ZERO);
    // Left-apply the new reflector's H^H to the remaining columns.
    if pl > 1 {
        zlarf_left(&nv, ntau.conj(), rl, pl - 1, &mut blk[rl..], rl, &mut work);
    }
    write_back_rect(a, br0, rl, pr0, pl, &blk);
    Some((br0, ntau, nv))
}

/// Kernel 3 (`zHBLRU`): apply the new reflector two-sided to the next
/// symmetric diagonal window.
pub fn zhblru<T: ComplexScalar>(a: &mut CMatrixG<T>, refl: (usize, T, &[T])) {
    let (r0, tau, v) = refl;
    two_sided_window(a, r0, v.len(), v, tau);
}

/// Run the bulge chase on a banded dense Hermitian matrix (entries
/// outside semi-bandwidth `nb` must be zero — stage 1 guarantees it).
pub fn reduce<T: ComplexScalar>(a: CMatrixG<T>, nb: usize) -> ChaseResultC<T> {
    match reduce_with(a, nb, &Ctrl::NONE) {
        Ok(r) => r,
        // Unreachable: the inert control never fails a checkpoint.
        Err(e) => unreachable!("inert control failed: {e}"),
    }
}

/// [`reduce`] polling a lifecycle control at every sweep boundary.
pub fn reduce_with<T: ComplexScalar>(
    mut a: CMatrixG<T>,
    nb: usize,
    ctrl: &Ctrl,
) -> tseig_matrix::Result<ChaseResultC<T>> {
    let n = a.rows();
    let b = nb.max(1);
    let mut v2 = V2SetC::new(n, b);
    if n > 2 && b > 1 {
        for s in 0..n - 2 {
            ctrl.checkpoint()?;
            run_sweep(&mut a, s, b, &mut v2);
        }
    }
    let (tridiagonal, phases) = phase_fold(&a);
    Ok(ChaseResultC {
        tridiagonal,
        v2,
        phases,
    })
}

fn run_sweep<T: ComplexScalar>(a: &mut CMatrixG<T>, s: usize, b: usize, v2: &mut V2SetC<T>) {
    let n = a.rows();
    if s + 2 >= n {
        return;
    }
    let (mut start, mut tau, mut v) = zhbceu(a, s, b);
    v2.store(s, 0, start, tau, v.clone());
    let mut k = 1usize;
    // tidy: allow(checkpoint-loop) -- per-sweep reflector chain; reduce_ws polls once per sweep
    while let Some((ns, nt, nv)) = zhbrel(a, b, (start, tau, &v)) {
        zhblru(a, (ns, nt, &nv));
        v2.store(s, k, ns, nt, nv.clone());
        (start, tau, v) = (ns, nt, nv);
        k += 1;
    }
    debug_assert_eq!(k, depth_of_sweep(n, b, s), "sweep {s} depth");
    let _ = (start, tau, v);
}

// ---------------------------------------------------------------------
// Scheduled drivers (dynamic DAG / static pipeline).
// ---------------------------------------------------------------------

/// How the Hermitian bulge-chasing task graph is executed — same
/// options as the real pipeline's `Stage2Exec`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheduler {
    /// Plain sequential kernel loop (lowest overhead).
    Serial,
    /// Static pipelined scheduler: sweeps round-robin over a small
    /// worker set, synchronization by progress counters.
    Static(usize),
    /// Dynamic superscalar runtime with region-inferred dependences.
    Dynamic(usize),
}

/// Logical task of the chase: sweep `s`, chase depth `k` (`k == 0` is
/// `zhbceu`; `k >= 1` the `zhbrel`+`zhblru` pair).
#[derive(Clone, Copy, Debug)]
struct ChaseTask {
    s: usize,
    k: usize,
}

/// Region space of the band's diagonal index intervals (entry `(i, j)`,
/// `i >= j`, of the Hermitian matrix lies in `[j, i]`).
const BAND_SPACE: u32 = 0;
/// Region space of V2 reflector slots, one point per `(sweep, depth)`.
const V2_SPACE: u32 = 1;

/// Exact inclusive diagonal-index span `[lo, hi]` of the band entries an
/// `(s, k)` task touches — the same formula as the real chase, because
/// the geometry is: `zhbceu` rewrites column `s` and the diamond block
/// up to row `min(s + b, n-1)`; a chase step right-applies the previous
/// reflector (rows `s+1+(k-1)b ..`) and reaches at most row
/// `s + (k+1)b` (clamped at the edge).
fn task_row_span(n: usize, b: usize, t: ChaseTask) -> (usize, usize) {
    let lo = if t.k == 0 {
        t.s
    } else {
        t.s + 1 + (t.k - 1) * b
    };
    let hi = (t.s + (t.k + 1) * b).min(n - 1);
    (lo, hi)
}

/// V2 slot region of reflector `(s, k)`. The stride is the maximum step
/// count of any sweep (sweep 0), so slot ids never collide across sweeps.
fn v2_slot(n: usize, b: usize, s: usize, k: usize) -> Region {
    let stride = steps_of_sweep(n, b, 0);
    Region::point(V2_SPACE, (s * stride + k) as u64)
}

/// Declared footprint of an `(s, k)` task: the exact band span it
/// touches (Write — every kernel both reads and writes its blocks), the
/// V2 slot it stores, and for chase steps the predecessor slot it reads.
/// Exactness matters twice over: any touch outside these regions trips
/// the shadow checker, and spans one index wider would serialize tasks
/// `(s, k)` and `(s, k + 2)`, which are adjacent but disjoint.
fn task_regions(n: usize, b: usize, t: ChaseTask) -> Vec<(Region, Access)> {
    let (lo, hi) = task_row_span(n, b, t);
    let mut regions = vec![(
        Region::span(BAND_SPACE, lo as u64, hi as u64 + 1),
        Access::Write,
    )];
    if t.k < depth_of_sweep(n, b, t.s) {
        // The final step of an nb-aligned sweep stores no reflector.
        regions.push((v2_slot(n, b, t.s, t.k), Access::Write));
    }
    if t.k > 0 {
        regions.push((v2_slot(n, b, t.s, t.k - 1), Access::Read));
    }
    regions
}

/// Tag and priority lane of a chase task (sweep heads sit on the
/// critical path).
fn task_meta(t: ChaseTask) -> (&'static str, Priority) {
    if t.k == 0 {
        ("zhbceu", Priority::High)
    } else {
        ("zhbrel+zhblru", Priority::Normal)
    }
}

/// The Hermitian chase task set as *declared* specs — the same
/// `(tag, priority, regions)` triples [`reduce_scheduled`] submits,
/// exported for offline verification. `xtask graphcheck` sweeps these
/// through `tseig_runtime::verify` to prove race-freedom per `(n, b)`
/// instance, alongside the real pipeline's.
pub fn chase_task_specs(n: usize, b: usize) -> Vec<TaskSpec> {
    enumerate_tasks(n, b)
        .into_iter()
        .map(|t| {
            let (tag, priority) = task_meta(t);
            TaskSpec {
                tag,
                priority,
                regions: task_regions(n, b, t),
            }
        })
        .collect()
}

/// Static-scheduler owner assignment (sweep round-robin) for the task
/// set of [`chase_task_specs`], exported for offline verification of
/// the derived static schedule.
pub fn chase_task_owners(n: usize, b: usize, threads: usize) -> Vec<usize> {
    let threads = threads.max(1);
    enumerate_tasks(n, b)
        .iter()
        .map(|t| t.s % threads)
        .collect()
}

/// Execute one `(s, k)` task against the shared matrix/V2 cells.
///
/// # Safety contract
/// Caller (the scheduler) must guarantee exclusive access to the
/// declared regions; V2 slots `(s, k)` are written by exactly one task.
fn run_task<T: ComplexScalar>(
    a: &DataCell<CMatrixG<T>>,
    v2: &DataCell<V2SetC<T>>,
    b: usize,
    t: ChaseTask,
) {
    // Safety: region declarations serialize conflicting band accesses;
    // each task writes its own V2 slot only and reads the slot (s, k-1)
    // its same-sweep predecessor wrote (ordered by overlapping band
    // regions). Band touches are reported by the kernels; V2 slot
    // touches are reported here against the declared slot regions.
    unsafe {
        let am = a.get_mut();
        let v2m = v2.get_mut();
        let n = am.rows();
        if t.k == 0 {
            let (start, tau, v) = zhbceu(am, t.s, b);
            shadow::touch_region(v2_slot(n, b, t.s, 0), Access::Write);
            v2m.store(t.s, 0, start, tau, v);
        } else {
            shadow::touch_region(v2_slot(n, b, t.s, t.k - 1), Access::Read);
            let prev = v2m.sweeps[t.s][t.k - 1].clone();
            let Some((ns, nt, nv)) = zhbrel(am, b, (prev.0, prev.1, &prev.2)) else {
                return;
            };
            zhblru(am, (ns, nt, &nv));
            shadow::touch_region(v2_slot(n, b, t.s, t.k), Access::Write);
            v2m.store(t.s, t.k, ns, nt, nv);
        }
    }
}

/// Enumerate all chase tasks in the serial (sweep-major) order.
fn enumerate_tasks(n: usize, b: usize) -> Vec<ChaseTask> {
    let mut tasks = Vec::new();
    if n <= 2 || b <= 1 {
        return tasks;
    }
    for s in 0..n - 2 {
        for k in 0..steps_of_sweep(n, b, s) {
            tasks.push(ChaseTask { s, k });
        }
    }
    tasks
}

/// Run the Hermitian bulge chase under the chosen scheduler. Produces
/// the same tridiagonal, reflector set and phases as [`reduce`] —
/// bit-identical, because the schedulers only reorder tasks whose data
/// regions are disjoint.
pub fn reduce_scheduled<T: ComplexScalar>(
    a: CMatrixG<T>,
    nb: usize,
    sched: Scheduler,
    ctrl: &Ctrl,
) -> Result<ChaseResultC<T>, String> {
    let n = a.rows();
    let b = nb.max(1);
    match sched {
        Scheduler::Serial => reduce_with(a, nb, ctrl).map_err(|e| e.to_string()),
        Scheduler::Dynamic(threads) => {
            let tasks = enumerate_tasks(n, b);
            let a_cell = Arc::new(DataCell::new(a));
            let v2_cell = Arc::new(DataCell::new(V2SetC::new(n, b)));
            let mut graph = TaskGraph::new();
            for t in tasks {
                let regions = task_regions(n, b, t);
                let ac = a_cell.clone();
                let vc = v2_cell.clone();
                let (tag, prio) = task_meta(t);
                graph.add_task(tag, prio, &regions, move || run_task(&ac, &vc, b, t));
            }
            Runtime::new(threads).run_with_poll(graph, &|| ctrl.poll_stop())?;
            let a = Arc::try_unwrap(a_cell)
                .map_err(|_| "matrix still shared".to_string())?
                .into_inner();
            let v2 = Arc::try_unwrap(v2_cell)
                .map_err(|_| "v2 still shared".to_string())?
                .into_inner();
            let (tridiagonal, phases) = phase_fold(&a);
            Ok(ChaseResultC {
                tridiagonal,
                v2,
                phases,
            })
        }
        Scheduler::Static(threads) => {
            let threads = threads.max(1);
            let tasks = enumerate_tasks(n, b);
            // Derive the cross-worker wait lists once through the shared
            // runtime schedule (the same region replay the real-scalar
            // driver caches in its `SolvePlan`), then execute.
            let owner = chase_task_owners(n, b, threads);
            let regions: Vec<_> = tasks.iter().map(|t| task_regions(n, b, *t)).collect();
            let sched = tseig_runtime::StaticSchedule::derive(threads, &owner, &regions);
            let a_cell = Arc::new(DataCell::new(a));
            let v2_cell = Arc::new(DataCell::new(V2SetC::new(n, b)));
            sched.execute_with_poll(
                |i| {
                    let ac = a_cell.clone();
                    let vc = v2_cell.clone();
                    let t = tasks[i];
                    Box::new(move || run_task(&ac, &vc, b, t))
                },
                &|| ctrl.poll_stop(),
            )?;
            let a = Arc::try_unwrap(a_cell)
                .map_err(|_| "matrix still shared".to_string())?
                .into_inner();
            let v2 = Arc::try_unwrap(v2_cell)
                .map_err(|_| "v2 still shared".to_string())?
                .into_inner();
            let (tridiagonal, phases) = phase_fold(&a);
            Ok(ChaseResultC {
                tridiagonal,
                v2,
                phases,
            })
        }
    }
}

/// `A[r0..r0+l, r0..r0+l] <- H^H (.) H` on a copied window.
fn two_sided_window<T: ComplexScalar>(a: &mut CMatrixG<T>, r0: usize, l: usize, v: &[T], tau: T) {
    if tau == T::ZERO {
        return;
    }
    touch_band(r0, r0 + l - 1, Access::Write);
    let mut blk = vec![T::ZERO; l * l];
    for j in 0..l {
        for i in 0..l {
            blk[i + j * l] = a[(r0 + i, r0 + j)];
        }
    }
    let mut work = vec![T::ZERO; l];
    zlarf_left(v, tau.conj(), l, l, &mut blk, l, &mut work);
    zlarf_right(v, tau, l, l, &mut blk, l, &mut work);
    for j in 0..l {
        for i in 0..l {
            a[(r0 + i, r0 + j)] = blk[i + j * l];
        }
        // Snap the diagonal real (Hermitian invariant up to rounding).
        a[(r0 + j, r0 + j)] = T::new(a[(r0 + j, r0 + j)].re(), 0.0);
    }
}

/// Write a strictly-sub-diagonal block back, mirroring the conjugate
/// into the upper triangle.
fn write_back_rect<T: ComplexScalar>(
    a: &mut CMatrixG<T>,
    r0: usize,
    rl: usize,
    c0: usize,
    cl: usize,
    blk: &[T],
) {
    touch_band(c0, r0 + rl - 1, Access::Write);
    for j in 0..cl {
        for i in 0..rl {
            let val = blk[i + j * rl];
            a[(r0 + i, c0 + j)] = val;
            a[(c0 + j, r0 + i)] = val.conj();
        }
    }
}

/// Extract the tridiagonal and rotate its off-diagonals real with a
/// unitary diagonal: `T_complex = D T_real D^H`, `D = diag(phases)`.
// tidy: allow(task-storage) -- main-thread read-only extraction, runs after all tasks completed
pub fn phase_fold<T: ComplexScalar>(a: &CMatrixG<T>) -> (SymTridiagonal, Vec<T>) {
    let n = a.rows();
    let mut d = vec![0.0f64; n];
    let mut e = vec![0.0f64; n.saturating_sub(1)];
    let mut phases = vec![T::ONE; n];
    for j in 0..n {
        d[j] = a[(j, j)].re();
    }
    for j in 0..n.saturating_sub(1) {
        let ej = a[(j + 1, j)];
        let m = ej.abs();
        e[j] = m;
        phases[j + 1] = if m == 0.0 {
            phases[j]
        } else {
            // p_{j+1} = e_j p_j / |e_j| makes conj(p_{j+1}) e_j p_j real.
            (ej * phases[j]).scale(1.0 / m)
        };
    }
    (SymTridiagonal::new(d, e), phases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage1::he2hb;
    use crate::validate::{rand_hermitian, real_embedding_eigenvalues};
    use tseig_matrix::{c64, norms, CMatrix};

    fn banded_hermitian(n: usize, b: usize, seed: u64) -> CMatrix {
        let a = rand_hermitian(n, seed);
        let mut out = CMatrix::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                if i.abs_diff(j) <= b {
                    out[(i, j)] = a[(i, j)];
                }
            }
        }
        out.hermitize_from_lower();
        out
    }

    #[test]
    fn chase_spectrum_preserved() {
        for (n, b, seed) in [(14, 3, 60), (20, 5, 61), (11, 10, 62)] {
            let a = banded_hermitian(n, b, seed);
            let want = real_embedding_eigenvalues(&a);
            let r = reduce(a, b);
            let got = tseig_tridiag::sturm::bisect_eigenvalues(&r.tridiagonal, 0, n).unwrap();
            assert!(
                norms::eigenvalue_distance(&got, &want) < 1e-9,
                "spectrum changed (n={n}, b={b})"
            );
            // Off-diagonals are non-negative real by construction.
            assert!(r.tridiagonal.off_diag().iter().all(|&x| x >= 0.0));
            // Phases are unit modulus.
            assert!(r.phases.iter().all(|p| (p.abs() - 1.0).abs() < 1e-12));
        }
    }

    #[test]
    fn q2_reconstructs_band() {
        // B == Q2 (D T_real D^H) Q2^H with Q2 from the stored reflectors.
        let n = 12;
        let b = 3;
        let a0 = banded_hermitian(n, b, 63);
        let r = reduce(a0.clone(), b);
        // Build Q2 = H_1 H_2 ... (chase order) densely.
        let mut q2 = CMatrix::identity(n);
        let mut work = vec![C64::ZERO; n];
        for s in (0..r.v2.sweep_count()).rev() {
            for (start, tau, v) in r.v2.sweep(s).iter().rev() {
                let ldq = q2.ld();
                zlarf_left(
                    v,
                    *tau,
                    v.len(),
                    n,
                    &mut q2.as_mut_slice()[*start..],
                    ldq,
                    &mut work,
                );
            }
        }
        // T_complex = D T D^H.
        let t = r.tridiagonal.to_dense();
        let tc = CMatrix::from_fn(n, n, |i, j| {
            r.phases[i] * c64(t[(i, j)], 0.0) * r.phases[j].conj()
        });
        let recon = q2.multiply(&tc).multiply(&q2.adjoint());
        assert!(recon.max_diff(&a0) < 1e-10 * n as f64, "Q2 T Q2^H != B");
    }

    #[test]
    fn schedulers_match_serial() {
        let n = 40;
        let b = 5;
        let a = banded_hermitian(n, b, 65);
        let serial = reduce(a.clone(), b);
        for sched in [
            Scheduler::Dynamic(4),
            Scheduler::Static(3),
            Scheduler::Static(1),
        ] {
            let r = reduce_scheduled(a.clone(), b, sched, &Ctrl::NONE).unwrap();
            // Bit-identical results: every scheduler runs the same
            // kernels in a serial-equivalent order.
            assert_eq!(
                r.tridiagonal.diag(),
                serial.tridiagonal.diag(),
                "{sched:?} d"
            );
            assert_eq!(
                r.tridiagonal.off_diag(),
                serial.tridiagonal.off_diag(),
                "{sched:?} e"
            );
            assert_eq!(r.phases, serial.phases, "{sched:?} phases");
            assert_eq!(r.v2.reflector_count(), serial.v2.reflector_count());
            for s in 0..serial.v2.sweep_count() {
                assert_eq!(r.v2.sweep(s), serial.v2.sweep(s), "{sched:?} sweep {s}");
            }
        }
    }

    #[test]
    fn chase_graph_certified_race_free() {
        // The same checks `xtask graphcheck` runs over its sweep, pinned
        // in-tree on a few Hermitian instances: conflict-pair dependence
        // coverage, acyclicity, priority sanity, static consistency.
        use tseig_runtime::verify;
        for (n, b) in [(20, 3), (24, 4), (14, 5), (13, 2)] {
            let specs = chase_task_specs(n, b);
            assert!(!specs.is_empty());
            let sum = verify::check_graph(&specs);
            assert!(sum.ok(), "(n={n}, b={b}): {:?}", sum.violations);
            for threads in 1..=4 {
                let owners = chase_task_owners(n, b, threads);
                let st = verify::check_static(&specs, &owners, threads);
                assert!(st.ok(), "(n={n}, b={b}, t={threads}): {:?}", st.violations);
            }
        }
    }

    #[test]
    fn exact_spans_drop_spurious_same_sweep_edges() {
        // Same regression pin as the real pipeline: tasks (s, k) and
        // (s, k+2) are disjoint; the old nb-chunk declaration serialized
        // them through a shared boundary chunk.
        use tseig_runtime::verify;
        let (n, b) = (20, 3);
        let tasks = enumerate_tasks(n, b);
        let id = |s: usize, k: usize| tasks.iter().position(|t| t.s == s && t.k == k).unwrap();
        let specs = chase_task_specs(n, b);
        let edges = verify::infer_edges(&specs);
        assert!(edges[id(0, 1)].contains(&id(0, 2)));
        assert!(!edges[id(0, 1)].contains(&id(0, 3)));
        assert!(!verify::conflict_pairs(&specs)
            .iter()
            .any(|&(i, j, _)| (i, j) == (id(0, 1), id(0, 3))));
    }

    #[cfg(debug_assertions)]
    #[test]
    fn narrowed_declaration_caught_by_shadow_checker() {
        // Acceptance mutation, Hermitian side: narrow one task's declared
        // band span by a row; the shadow checker must abort the run when
        // the kernels touch the chopped row.
        let (n, b) = (18, 3);
        let a = banded_hermitian(n, b, 66);
        let tasks = enumerate_tasks(n, b);
        let victim = tasks.iter().position(|t| t.s == 2 && t.k == 1).unwrap();
        let a_cell = Arc::new(DataCell::new(a));
        let v2_cell = Arc::new(DataCell::new(V2SetC::new(n, b)));
        let mut graph = TaskGraph::new();
        for (i, t) in tasks.iter().enumerate() {
            let mut regions = task_regions(n, b, *t);
            if i == victim {
                let (lo, hi) = task_row_span(n, b, *t);
                assert!(hi > lo + 1);
                regions[0] = (
                    Region::span(super::BAND_SPACE, lo as u64, hi as u64),
                    Access::Write,
                );
            }
            let (tag, prio) = task_meta(*t);
            let (ac, vc, t) = (a_cell.clone(), v2_cell.clone(), *t);
            graph.add_task(tag, prio, &regions, move || run_task(&ac, &vc, b, t));
        }
        let err = Runtime::new(1).run(graph).unwrap_err();
        assert!(
            err.contains("outside its declared footprint"),
            "expected a shadow violation, got: {err}"
        );
    }

    #[test]
    fn full_pipeline_spectrum() {
        let n = 18;
        let a = rand_hermitian(n, 64);
        let bf = he2hb(&a, 4);
        let want = real_embedding_eigenvalues(&a);
        let r = reduce(bf.band.clone(), 4);
        let got = tseig_tridiag::sturm::bisect_eigenvalues(&r.tridiagonal, 0, n).unwrap();
        assert!(norms::eigenvalue_distance(&got, &want) < 1e-9);
    }
}
