//! Stage 2 (Hermitian): band to tridiagonal bulge chasing.
//!
//! The same three-kernel column-wise chase as the real pipeline
//! (`hbceu`/`hbrel`/`hblru`, delayed annihilation), in complex
//! arithmetic. `zlarfg` makes every annihilation result *real*, so the
//! final tridiagonal is real up to the entries no sweep ever touches;
//! [`phase_fold`] rotates those real too with a unitary diagonal that is
//! handed to the back-transformation.
//!
//! The band is kept in the dense Hermitian matrix produced by stage 1;
//! every kernel works on a copied square or rectangular window (the
//! cache-resident blocks of the paper), then writes it back and mirrors
//! the conjugate triangle so the dense matrix stays exactly Hermitian.

use crate::ckernels::{zlarf_left, zlarf_right, zlarfg};
use tseig_matrix::{c64, CMatrix, SymTridiagonal, C64};

/// The complex reflector set of the chase, indexed `(sweep, depth)`.
pub struct V2SetC {
    n: usize,
    nb: usize,
    sweeps: Vec<Vec<(usize, C64, Vec<C64>)>>,
}

impl V2SetC {
    pub fn n(&self) -> usize {
        self.n
    }

    pub fn nb(&self) -> usize {
        self.nb
    }

    pub fn sweep_count(&self) -> usize {
        self.sweeps.len()
    }

    pub fn sweep(&self, s: usize) -> &[(usize, C64, Vec<C64>)] {
        &self.sweeps[s]
    }
}

/// Result of the Hermitian chase: real tridiagonal + reflectors + the
/// unitary diagonal phases folded out of the off-diagonals.
pub struct ChaseResultC {
    pub tridiagonal: SymTridiagonal,
    pub v2: V2SetC,
    /// `phases[j]` scales row `j` of the real tridiagonal eigenvectors:
    /// eigenvectors of the complex tridiagonal are `diag(phases) * E`.
    pub phases: Vec<C64>,
}

/// Run the bulge chase on a banded dense Hermitian matrix (entries
/// outside semi-bandwidth `nb` must be zero — stage 1 guarantees it).
pub fn reduce(mut a: CMatrix, nb: usize) -> ChaseResultC {
    let n = a.rows();
    let b = nb.max(1);
    let mut sweeps = Vec::new();
    if n > 2 && b > 1 {
        for s in 0..n - 2 {
            sweeps.push(run_sweep(&mut a, s, b));
        }
    }
    let (tridiagonal, phases) = phase_fold(&a);
    ChaseResultC {
        tridiagonal,
        v2: V2SetC { n, nb: b, sweeps },
        phases,
    }
}

fn run_sweep(a: &mut CMatrix, s: usize, b: usize) -> Vec<(usize, C64, Vec<C64>)> {
    let n = a.rows();
    let mut out = Vec::new();
    if s + 2 >= n {
        return out;
    }
    // --- hbceu: annihilate column s below the first sub-diagonal.
    let r0 = s + 1;
    let r1 = (s + b).min(n - 1);
    let l = r1 - r0 + 1;
    let mut v = vec![C64::ZERO; l];
    for i in 0..l {
        v[i] = a[(r0 + i, s)];
    }
    let (beta, tau) = {
        let (head, tail) = v.split_at_mut(1);
        zlarfg(head[0], tail)
    };
    v[0] = C64::ONE;
    a[(r0, s)] = c64(beta, 0.0);
    a[(s, r0)] = c64(beta, 0.0);
    for i in 1..l {
        a[(r0 + i, s)] = C64::ZERO;
        a[(s, r0 + i)] = C64::ZERO;
    }
    two_sided_window(a, r0, l, &v, tau);
    out.push((r0, tau, v));

    // --- chase.
    loop {
        let (pr0, ptau, pv) = {
            let last = out.last().unwrap();
            (last.0, last.1, last.2.clone())
        };
        let pl = pv.len();
        let br0 = pr0 + pl;
        if br0 >= n {
            break;
        }
        let br1 = (br0 + b - 1).min(n - 1);
        let rl = br1 - br0 + 1;
        // Copy block A[br0..=br1, pr0..pr0+pl].
        let mut blk = vec![C64::ZERO; rl * pl];
        for j in 0..pl {
            for i in 0..rl {
                blk[i + j * rl] = a[(br0 + i, pr0 + j)];
            }
        }
        let mut work = vec![C64::ZERO; rl.max(pl)];
        // Right-apply the previous reflector (creates the bulge).
        zlarf_right(&pv, ptau, rl, pl, &mut blk, rl, &mut work);
        if rl < 2 {
            write_back_rect(a, br0, rl, pr0, pl, &blk);
            break;
        }
        // Annihilate the bulge's first column (delayed annihilation).
        let mut nv = vec![C64::ZERO; rl];
        nv.copy_from_slice(&blk[..rl]);
        let (nbeta, ntau) = {
            let (head, tail) = nv.split_at_mut(1);
            zlarfg(head[0], tail)
        };
        nv[0] = C64::ONE;
        blk[0] = c64(nbeta, 0.0);
        blk[1..rl].fill(C64::ZERO);
        // Left-apply the new reflector's H^H to the remaining columns.
        if pl > 1 {
            zlarf_left(&nv, ntau.conj(), rl, pl - 1, &mut blk[rl..], rl, &mut work);
        }
        write_back_rect(a, br0, rl, pr0, pl, &blk);
        // hblru: two-sided update of the next symmetric window.
        two_sided_window(a, br0, rl, &nv, ntau);
        out.push((br0, ntau, nv));
    }
    out
}

/// `A[r0..r0+l, r0..r0+l] <- H^H (.) H` on a copied window.
fn two_sided_window(a: &mut CMatrix, r0: usize, l: usize, v: &[C64], tau: C64) {
    if tau == C64::ZERO {
        return;
    }
    let mut blk = vec![C64::ZERO; l * l];
    for j in 0..l {
        for i in 0..l {
            blk[i + j * l] = a[(r0 + i, r0 + j)];
        }
    }
    let mut work = vec![C64::ZERO; l];
    zlarf_left(v, tau.conj(), l, l, &mut blk, l, &mut work);
    zlarf_right(v, tau, l, l, &mut blk, l, &mut work);
    for j in 0..l {
        for i in 0..l {
            a[(r0 + i, r0 + j)] = blk[i + j * l];
        }
        // Snap the diagonal real (Hermitian invariant up to rounding).
        a[(r0 + j, r0 + j)] = c64(a[(r0 + j, r0 + j)].re, 0.0);
    }
}

/// Write a strictly-sub-diagonal block back, mirroring the conjugate
/// into the upper triangle.
fn write_back_rect(a: &mut CMatrix, r0: usize, rl: usize, c0: usize, cl: usize, blk: &[C64]) {
    for j in 0..cl {
        for i in 0..rl {
            let val = blk[i + j * rl];
            a[(r0 + i, c0 + j)] = val;
            a[(c0 + j, r0 + i)] = val.conj();
        }
    }
}

/// Extract the tridiagonal and rotate its off-diagonals real with a
/// unitary diagonal: `T_complex = D T_real D^H`, `D = diag(phases)`.
pub fn phase_fold(a: &CMatrix) -> (SymTridiagonal, Vec<C64>) {
    let n = a.rows();
    let mut d = vec![0.0f64; n];
    let mut e = vec![0.0f64; n.saturating_sub(1)];
    let mut phases = vec![C64::ONE; n];
    for j in 0..n {
        d[j] = a[(j, j)].re;
    }
    for j in 0..n.saturating_sub(1) {
        let ej = a[(j + 1, j)];
        let m = ej.abs();
        e[j] = m;
        phases[j + 1] = if m == 0.0 {
            phases[j]
        } else {
            // p_{j+1} = e_j p_j / |e_j| makes conj(p_{j+1}) e_j p_j real.
            (ej * phases[j]).scale(1.0 / m)
        };
    }
    (SymTridiagonal::new(d, e), phases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage1::he2hb;
    use crate::validate::{rand_hermitian, real_embedding_eigenvalues};
    use tseig_matrix::norms;

    fn banded_hermitian(n: usize, b: usize, seed: u64) -> CMatrix {
        let a = rand_hermitian(n, seed);
        let mut out = CMatrix::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                if i.abs_diff(j) <= b {
                    out[(i, j)] = a[(i, j)];
                }
            }
        }
        out.hermitize_from_lower();
        out
    }

    #[test]
    fn chase_spectrum_preserved() {
        for (n, b, seed) in [(14, 3, 60), (20, 5, 61), (11, 10, 62)] {
            let a = banded_hermitian(n, b, seed);
            let want = real_embedding_eigenvalues(&a);
            let r = reduce(a, b);
            let got = tseig_tridiag::sturm::bisect_eigenvalues(&r.tridiagonal, 0, n).unwrap();
            assert!(
                norms::eigenvalue_distance(&got, &want) < 1e-9,
                "spectrum changed (n={n}, b={b})"
            );
            // Off-diagonals are non-negative real by construction.
            assert!(r.tridiagonal.off_diag().iter().all(|&x| x >= 0.0));
            // Phases are unit modulus.
            assert!(r.phases.iter().all(|p| (p.abs() - 1.0).abs() < 1e-12));
        }
    }

    #[test]
    fn q2_reconstructs_band() {
        // B == Q2 (D T_real D^H) Q2^H with Q2 from the stored reflectors.
        let n = 12;
        let b = 3;
        let a0 = banded_hermitian(n, b, 63);
        let r = reduce(a0.clone(), b);
        // Build Q2 = H_1 H_2 ... (chase order) densely.
        let mut q2 = CMatrix::identity(n);
        let mut work = vec![C64::ZERO; n];
        for s in (0..r.v2.sweep_count()).rev() {
            for (start, tau, v) in r.v2.sweep(s).iter().rev() {
                let ldq = q2.ld();
                zlarf_left(
                    v,
                    *tau,
                    v.len(),
                    n,
                    &mut q2.as_mut_slice()[*start..],
                    ldq,
                    &mut work,
                );
            }
        }
        // T_complex = D T D^H.
        let t = r.tridiagonal.to_dense();
        let tc = CMatrix::from_fn(n, n, |i, j| {
            r.phases[i] * c64(t[(i, j)], 0.0) * r.phases[j].conj()
        });
        let recon = q2.multiply(&tc).multiply(&q2.adjoint());
        assert!(recon.max_diff(&a0) < 1e-10 * n as f64, "Q2 T Q2^H != B");
    }

    #[test]
    fn full_pipeline_spectrum() {
        let n = 18;
        let a = rand_hermitian(n, 64);
        let bf = he2hb(&a, 4);
        let want = real_embedding_eigenvalues(&a);
        let r = reduce(bf.band.clone(), 4);
        let got = tseig_tridiag::sturm::bisect_eigenvalues(&r.tridiagonal, 0, n).unwrap();
        assert!(norms::eigenvalue_distance(&got, &want) < 1e-9);
    }
}
