//! Complex BLAS-like kernels and the complex Householder tool-chain.
//!
//! Conventions mirror the real kernels in `tseig-kernels`: column-major
//! `(&[C64], ld)` slices, lower-triangle Hermitian storage, explicit-`V`
//! block reflectors.
//!
//! ## One engine, both complex widths
//!
//! Everything in this module is generic over
//! `T: ComplexScalar (+ GemmScalar)` — the LAPACK-style `z` prefix is
//! kept for familiarity, but each entry point serves both `C64`
//! (`zheev`-shaped) and `C32` (`cheev`-shaped) solves. Reductions that
//! need `f64` intermediates (norms, reflector scalars) widen through the
//! `ComplexScalar` accessors and round back on store.
//!
//! The BLAS-3 entry points here are *thin wrappers over the generic
//! packed engine* (`tseig_kernels::blas3::engine`): [`zgemm`] is the
//! packed, rayon-parallel nest monomorphized at the element type, and
//! [`zher2k_lower`] / [`zhemm_lower_left`] are blocked exactly like the
//! real `syr2k_lower` / `symm_lower_left` — a small diagonal kernel per
//! column panel plus packed `gemm`s for everything off-diagonal. The
//! operand-op vocabulary is the shared [`Op`] enum re-exported from
//! `tseig-kernels` (one dialect for both pipelines; the real API's
//! LAPACK-style `Trans` maps into it via `From`).
//!
//! The pre-engine naive triple loops survive **only as the test/bench
//! oracle** [`zgemm_oracle`] — the differential baseline the packed
//! complex path is validated (and its speedup measured) against.
//!
//! Flops are charged at 8 real flops per complex multiply-add pair
//! (LAPACK's conventional `zgemm = 8mnk` accounting), and bytes on the
//! packed-engine traffic model, so arithmetic-intensity reports stay
//! comparable between the real and complex columns.

use tseig_kernels::blas3::engine::{self, GemmScalar};
use tseig_kernels::contract;
use tseig_kernels::flops::{add, add_bytes, Level};
use tseig_matrix::ComplexScalar;

/// The shared operand-op vocabulary of the generic engine
/// (`No`/`Trans`/`ConjTrans`) — re-exported so complex callers and the
/// real pipeline speak one dialect.
pub use tseig_kernels::blas3::Op;

/// Column-panel width of the blocked `zher2k`/`zhemm` (same panel order
/// as the real `syr2k`'s `SYR2K_JB`).
const ZBLK_JB: usize = 64;

/// `C <- alpha op(A) op(B) + beta C` (complex). `op(A)` is `m x k`,
/// `op(B)` is `k x n`.
///
/// Thin wrapper over the generic packed engine: BLIS-style packing with
/// the conjugation folded into the pack gather, the portable complex
/// microkernel, and the `jc`/`ic` rayon splits — one code path with the
/// real `gemm`. Counters (8mnk flops, packed-model bytes) are charged
/// by the engine entry.
#[allow(clippy::too_many_arguments)]
pub fn zgemm<T: ComplexScalar + GemmScalar>(
    opa: Op,
    opb: Op,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    engine::gemm_par(opa, opb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

/// Naive triple-loop `zgemm` — the **test oracle and bench baseline**
/// the packed path is differential-tested and speedup-measured against.
/// Not called by the pipeline. Byte accounting keeps this kernel's
/// historical streamed model (`A`/`B` read once, `C` read+written),
/// which is also the model its unblocked access pattern actually has.
#[allow(clippy::too_many_arguments)]
pub fn zgemm_oracle<T: ComplexScalar>(
    opa: Op,
    opb: Op,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    add(Level::L3, T::MULADD_FLOPS * (m * n * k) as u64);
    // A and B streamed once, C read and written once.
    add_bytes(Level::L3, T::BYTES * (m * k + k * n + 2 * m * n) as u64);
    for j in 0..n {
        let col = &mut c[j * ldc..j * ldc + m];
        if beta == T::ZERO {
            col.fill(T::ZERO);
        } else if beta != T::ONE {
            for v in col.iter_mut() {
                *v *= beta;
            }
        }
    }
    if alpha == T::ZERO || m == 0 || n == 0 || k == 0 {
        return;
    }
    let at = |i: usize, p: usize| match opa {
        Op::No => a[i + p * lda],
        Op::Trans => a[p + i * lda],
        Op::ConjTrans => a[p + i * lda].conj(),
    };
    let bt = |p: usize, j: usize| match opb {
        Op::No => b[p + j * ldb],
        Op::Trans => b[j + p * ldb],
        Op::ConjTrans => b[j + p * ldb].conj(),
    };
    for j in 0..n {
        for i in 0..m {
            let mut s = T::ZERO;
            for p in 0..k {
                s += at(i, p) * bt(p, j);
            }
            c[i + j * ldc] += alpha * s;
        }
    }
}

/// Traffic model of the blocked `zhemm`: stored triangle read once, `B`
/// re-streamed once per panel sweep, `C` read+written once.
fn zhemm_bytes(elem_bytes: u64, m: usize, k: usize) -> u64 {
    let sweeps = m.div_ceil(ZBLK_JB).max(1) as u64;
    elem_bytes * (((m * m / 2) + 2 * m * k) as u64 + (m * k) as u64 * sweeps)
}

/// `C <- alpha A B + beta C` with `A` Hermitian of order `m` (lower
/// triangle stored), `B`/`C` `m x k`.
///
/// Blocked mirror of the real `symm_lower_left`: per `ZBLK_JB`-wide
/// column panel of `A`, a small Hermitian diagonal kernel plus two
/// packed `gemm`s (`No` for the strictly-lower block, `ConjTrans` for
/// its mirrored upper image).
#[allow(clippy::too_many_arguments)]
pub fn zhemm_lower_left<T: ComplexScalar + GemmScalar>(
    m: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    if contract::enabled() {
        contract::require_mat("zhemm_lower_left", "a", a, m, m, lda);
        contract::require_mat("zhemm_lower_left", "b", b, m, k, ldb);
        contract::require_mat("zhemm_lower_left", "c", c, m, k, ldc);
        contract::require_no_alias("zhemm_lower_left", "a", a, "c", c);
        contract::require_no_alias("zhemm_lower_left", "b", b, "c", c);
        contract::require_finite_lower("zhemm_lower_left", "a", a, m, lda);
        contract::require_finite_mat("zhemm_lower_left", "b", b, m, k, ldb);
    }
    add(Level::L3, T::MULADD_FLOPS * (m * m * k) as u64);
    add_bytes(Level::L3, zhemm_bytes(T::BYTES, m, k));
    for j in 0..k {
        let col = &mut c[j * ldc..j * ldc + m];
        if beta == T::ZERO {
            col.fill(T::ZERO);
        } else if beta != T::ONE {
            for v in col.iter_mut() {
                *v *= beta;
            }
        }
    }
    if alpha == T::ZERO || m == 0 || k == 0 {
        return;
    }
    let mut j0 = 0;
    while j0 < m {
        let jn = ZBLK_JB.min(m - j0);
        // Hermitian diagonal block (rows/cols j0..j0+jn).
        zhemm_diag(
            jn,
            k,
            alpha,
            &a[j0 + j0 * lda..],
            lda,
            &b[j0..],
            ldb,
            &mut c[j0..],
            ldc,
        );
        let rows_below = m - j0 - jn;
        if rows_below > 0 {
            let r0 = j0 + jn;
            // C[r0.., :] += alpha * A[r0.., j0..r0] * B[j0..r0, :]
            engine::gemm_into(
                Op::No,
                Op::No,
                rows_below,
                k,
                jn,
                alpha,
                &a[r0 + j0 * lda..],
                lda,
                &b[j0..],
                ldb,
                &mut c[r0..],
                ldc,
            );
            // C[j0..r0, :] += alpha * A[r0.., j0..r0]^H * B[r0.., :]
            // (the mirrored upper image of the stored strictly-lower block).
            engine::gemm_into(
                Op::ConjTrans,
                Op::No,
                jn,
                k,
                rows_below,
                alpha,
                &a[r0 + j0 * lda..],
                lda,
                &b[r0..],
                ldb,
                &mut c[j0..],
                ldc,
            );
        }
        j0 += jn;
    }
}

/// Accumulate-only Hermitian-diagonal-block kernel of
/// [`zhemm_lower_left`] (scaling and accounting are the caller's):
/// one pass over the stored triangle serves the lower part and its
/// mirrored conjugate image; the diagonal's imaginary part is ignored
/// per the Hermitian storage contract.
#[allow(clippy::too_many_arguments)]
fn zhemm_diag<T: ComplexScalar>(
    m: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    for ja in 0..m {
        let acol = &a[ja * lda..ja * lda + m];
        for jb in 0..k {
            let bcol = &b[jb * ldb..jb * ldb + m];
            let ccol = &mut c[jb * ldc..jb * ldc + m];
            let t = alpha * bcol[ja];
            // Diagonal (real part only counts for a Hermitian matrix).
            ccol[ja] += T::new(acol[ja].re(), 0.0) * t;
            let mut s = T::ZERO;
            for i in ja + 1..m {
                ccol[i] += acol[i] * t;
                // Mirrored upper entry A[ja, i] = conj(A[i, ja]).
                s += bcol[i].mul_conj(acol[i]);
            }
            ccol[ja] += alpha * s;
        }
    }
}

/// Traffic model shared with the real `syr2k`: `X`/`Y` each packed
/// twice (once per `gemm` role), the stored triangle read+written once
/// per rank-`KC` update (packed-engine model, `KC = 256`).
fn zher2k_bytes(elem_bytes: u64, n: usize, k: usize) -> u64 {
    let npc = k.div_ceil(256).max(1) as u64;
    elem_bytes * (4 * (n * k) as u64 + (n * n) as u64 * npc)
}

/// Hermitian rank-2k update of the lower triangle:
/// `A <- A + alpha (X Y^H + Y X^H)` with `X`, `Y` `n x k` and real
/// `alpha` (keeps the matrix Hermitian).
///
/// Blocked mirror of the real `syr2k_lower`: `ZBLK_JB`-wide diagonal
/// blocks run the rank-1 kernel (which also snaps the diagonal real),
/// the strictly sub-diagonal part of each column panel is two packed
/// `gemm`s with `ConjTrans` folded into the pack step.
#[allow(clippy::too_many_arguments)]
pub fn zher2k_lower<T: ComplexScalar + GemmScalar>(
    n: usize,
    k: usize,
    alpha: f64,
    x: &[T],
    ldx: usize,
    y: &[T],
    ldy: usize,
    a: &mut [T],
    lda: usize,
) {
    if contract::enabled() {
        contract::require_mat("zher2k_lower", "x", x, n, k, ldx);
        contract::require_mat("zher2k_lower", "y", y, n, k, ldy);
        contract::require_mat("zher2k_lower", "a", a, n, n, lda);
        contract::require_no_alias("zher2k_lower", "x", x, "a", a);
        contract::require_no_alias("zher2k_lower", "y", y, "a", a);
        contract::require_finite_mat("zher2k_lower", "x", x, n, k, ldx);
        contract::require_finite_mat("zher2k_lower", "y", y, n, k, ldy);
    }
    add(Level::L3, T::MULADD_FLOPS * (n * n * k) as u64);
    add_bytes(Level::L3, zher2k_bytes(T::BYTES, n, k));
    if alpha == 0.0 || n == 0 || k == 0 {
        return;
    }
    let calpha = T::new(alpha, 0.0);
    let mut j0 = 0;
    while j0 < n {
        let jn = ZBLK_JB.min(n - j0);
        zher2k_diag(
            jn,
            k,
            alpha,
            &x[j0..],
            ldx,
            &y[j0..],
            ldy,
            &mut a[j0 + j0 * lda..],
            lda,
        );
        let rows_below = n - j0 - jn;
        if rows_below > 0 {
            let r0 = j0 + jn;
            let apanel = &mut a[r0 + j0 * lda..];
            // A[r0.., j0..r0] += alpha * X[r0.., :] Y[j0..r0, :]^H
            engine::gemm_into(
                Op::No,
                Op::ConjTrans,
                rows_below,
                jn,
                k,
                calpha,
                &x[r0..],
                ldx,
                &y[j0..],
                ldy,
                apanel,
                lda,
            );
            // A[r0.., j0..r0] += alpha * Y[r0.., :] X[j0..r0, :]^H
            engine::gemm_into(
                Op::No,
                Op::ConjTrans,
                rows_below,
                jn,
                k,
                calpha,
                &y[r0..],
                ldy,
                &x[j0..],
                ldx,
                apanel,
                lda,
            );
        }
        j0 += jn;
    }
}

/// Rank-1-loop `zher2k` on a diagonal block (accumulate only; the
/// caller owns scaling and accounting). Keeps the diagonal exactly
/// real, per the Hermitian storage contract.
#[allow(clippy::too_many_arguments)]
fn zher2k_diag<T: ComplexScalar>(
    n: usize,
    k: usize,
    alpha: f64,
    x: &[T],
    ldx: usize,
    y: &[T],
    ldy: usize,
    a: &mut [T],
    lda: usize,
) {
    for kk in 0..k {
        let xcol = &x[kk * ldx..kk * ldx + n];
        let ycol = &y[kk * ldy..kk * ldy + n];
        for j in 0..n {
            let tx = xcol[j].conj().scale(alpha);
            let ty = ycol[j].conj().scale(alpha);
            if tx == T::ZERO && ty == T::ZERO {
                continue;
            }
            let acol = &mut a[j * lda..j * lda + n];
            for i in j..n {
                acol[i] += xcol[i] * ty + ycol[i] * tx;
            }
            // Keep the diagonal exactly real.
            acol[j] = T::new(acol[j].re(), 0.0);
        }
    }
}

// ---------------------------------------------------------------------
// Complex Householder tool-chain.
// ---------------------------------------------------------------------

/// Complex reflector generation (LAPACK `zlarfg`): finds `H = I - tau v
/// v^H` with `v = [1, x']` such that `H^H [alpha, x] = [beta, 0]` and
/// **beta real**. Overwrites `x` with the tail of `v`; returns
/// `(beta, tau)`. The reflector scalars are computed in `f64` and
/// rounded to `T`'s component precision on store.
pub fn zlarfg<T: ComplexScalar>(alpha: T, x: &mut [T]) -> (f64, T) {
    let xnorm = {
        let mut s = 0.0f64;
        for v in x.iter() {
            s += v.abs2();
        }
        s.sqrt()
    };
    add(Level::L1, T::MULADD_FLOPS * x.len() as u64);
    add_bytes(Level::L1, T::BYTES * 2 * x.len() as u64);
    if xnorm == 0.0 && alpha.im() == 0.0 {
        return (alpha.re(), T::ZERO);
    }
    // beta = -sign(alpha.re) * ||[alpha, x]||.
    let (are, aim) = (alpha.re(), alpha.im());
    let norm = (are * are + aim * aim + xnorm * xnorm).sqrt();
    let beta = if are >= 0.0 { -norm } else { norm };
    let tau = T::new((beta - are) / beta, -aim / beta);
    let denom = alpha - T::new(beta, 0.0);
    let inv = T::ONE / denom;
    for v in x.iter_mut() {
        *v *= inv;
    }
    (beta, tau)
}

/// Left application `C <- (I - tau' v v^H) C`, with `tau'` passed
/// explicitly (callers pass `conj(tau)` to apply `H^H`, `tau` for `H`).
pub fn zlarf_left<T: ComplexScalar>(
    v: &[T],
    tau: T,
    m: usize,
    n: usize,
    c: &mut [T],
    ldc: usize,
    work: &mut [T],
) {
    if tau == T::ZERO {
        return;
    }
    add(Level::L2, 2 * T::MULADD_FLOPS * (m * n) as u64);
    // C read and written once, v/work streamed per column sweep.
    add_bytes(Level::L2, T::BYTES * (2 * m * n + m + 2 * n) as u64);
    // work_j = v^H C[:, j].
    for j in 0..n {
        let col = &c[j * ldc..j * ldc + m];
        let mut s = T::ZERO;
        for i in 0..m {
            s += col[i].mul_conj(v[i]);
        }
        work[j] = s;
    }
    for j in 0..n {
        let t = tau * work[j];
        if t == T::ZERO {
            continue;
        }
        let col = &mut c[j * ldc..j * ldc + m];
        for i in 0..m {
            col[i] -= v[i] * t;
        }
    }
}

/// Right application `C <- C (I - tau v v^H)`.
pub fn zlarf_right<T: ComplexScalar>(
    v: &[T],
    tau: T,
    m: usize,
    n: usize,
    c: &mut [T],
    ldc: usize,
    work: &mut [T],
) {
    if tau == T::ZERO {
        return;
    }
    add(Level::L2, 2 * T::MULADD_FLOPS * (m * n) as u64);
    // C read and written once, v/work streamed per column sweep.
    add_bytes(Level::L2, T::BYTES * (2 * m * n + 2 * m + n) as u64);
    // work = C v.
    work[..m].fill(T::ZERO);
    for j in 0..n {
        let t = v[j];
        if t == T::ZERO {
            continue;
        }
        let col = &c[j * ldc..j * ldc + m];
        for i in 0..m {
            work[i] += col[i] * t;
        }
    }
    // C[:, j] -= tau * work * conj(v_j).
    for j in 0..n {
        let t = tau * v[j].conj();
        if t == T::ZERO {
            continue;
        }
        let col = &mut c[j * ldc..j * ldc + m];
        for i in 0..m {
            col[i] -= work[i] * t;
        }
    }
}

/// Complex forward-columnwise `T` factor: `H_1 ... H_k = I - V T V^H`,
/// `V` with explicit unit diagonal and zeros above. `T`'s lower triangle
/// is zero-filled.
pub fn zlarft<T: ComplexScalar>(
    m: usize,
    k: usize,
    v: &[T],
    ldv: usize,
    tau: &[T],
    t: &mut [T],
    ldt: usize,
) {
    add(Level::L3, (T::MULADD_FLOPS / 2) * (m * k * k) as u64);
    // V streamed once per column pair, T is k x k and cache-resident.
    add_bytes(Level::L3, T::BYTES * (m * k + 2 * k * k) as u64);
    for i in 0..k {
        for l in i + 1..k {
            t[l + i * ldt] = T::ZERO;
        }
        if tau[i] == T::ZERO {
            for l in 0..=i {
                t[l + i * ldt] = T::ZERO;
            }
            continue;
        }
        // w = V(:, 0..i)^H v_i.
        for l in 0..i {
            let vl = &v[l * ldv..l * ldv + m];
            let vi = &v[i * ldv..i * ldv + m];
            let mut s = T::ZERO;
            for r in 0..m {
                s += vi[r].mul_conj(vl[r]);
            }
            t[l + i * ldt] = -(tau[i] * s);
        }
        // T(0..i, i) = T(0..i, 0..i) * w (top-down, in place).
        for l in 0..i {
            let mut s = T::ZERO;
            for q in l..i {
                s += t[l + q * ldt] * t[q + i * ldt];
            }
            t[l + i * ldt] = s;
        }
        t[i + i * ldt] = tau[i];
    }
}

/// Blocked left application `C <- (I - V T V^H) C` (`op == Op::No`) or
/// `C <- (I - V T^H V^H)^...` — precisely: applies `I - V op(T) V^H`.
#[allow(clippy::too_many_arguments)]
pub fn zlarfb_left<T: ComplexScalar + GemmScalar>(
    opt: Op,
    m: usize,
    n: usize,
    k: usize,
    v: &[T],
    ldv: usize,
    t: &[T],
    ldt: usize,
    c: &mut [T],
    ldc: usize,
    work: &mut [T],
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let (w, w2) = work[..2 * k * n].split_at_mut(k * n);
    // W = V^H C.
    zgemm(
        Op::ConjTrans,
        Op::No,
        k,
        n,
        m,
        T::ONE,
        v,
        ldv,
        c,
        ldc,
        T::ZERO,
        w,
        k,
    );
    // W2 = op(T) W  (T has a clean lower triangle, so dense multiply is fine).
    zgemm(opt, Op::No, k, n, k, T::ONE, t, ldt, w, k, T::ZERO, w2, k);
    // C -= V W2.
    zgemm(
        Op::No,
        Op::No,
        m,
        n,
        k,
        -T::ONE,
        v,
        ldv,
        w2,
        k,
        T::ONE,
        c,
        ldc,
    );
}

/// Unblocked complex QR of an `m x nc` panel (`zgeqr2`): reflectors below
/// the diagonal, `R` above, `tau` out.
pub fn zgeqr2<T: ComplexScalar>(m: usize, nc: usize, a: &mut [T], lda: usize, tau: &mut [T]) {
    let kmin = m.min(nc);
    let mut work = vec![T::ZERO; nc];
    let mut u = vec![T::ZERO; m];
    for j in 0..kmin {
        let (beta, tj) = {
            let col = &mut a[j * lda..j * lda + m];
            let (head, tail) = col.split_at_mut(j + 1);
            zlarfg(head[j], &mut tail[..m - j - 1])
        };
        a[j + j * lda] = T::new(beta, 0.0);
        tau[j] = tj;
        if tj == T::ZERO || j + 1 == nc {
            continue;
        }
        let rows = m - j;
        u[0] = T::ONE;
        for r in 1..rows {
            u[r] = a[j + r + j * lda];
        }
        // Trailing update with H^H.
        zlarf_left(
            &u[..rows],
            tj.conj(),
            rows,
            nc - j - 1,
            &mut a[j + (j + 1) * lda..],
            lda,
            &mut work,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tseig_matrix::{c64, CMatrix, C64};

    fn rand_cmat(m: usize, n: usize, seed: u64) -> CMatrix {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        CMatrix::from_fn(m, n, |_, _| {
            c64(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        })
    }

    fn rand_hermitian(n: usize, seed: u64) -> CMatrix {
        let mut a = rand_cmat(n, n, seed);
        a.hermitize_from_lower();
        a
    }

    #[test]
    fn zgemm_all_ops_vs_naive() {
        let (m, n, k) = (5, 6, 4);
        let a = rand_cmat(m, k, 1);
        let b = rand_cmat(k, n, 2);
        let want = a.multiply(&b);
        let ah = a.adjoint();
        let bh = b.adjoint();
        for (oa, ob, am, bm) in [
            (Op::No, Op::No, &a, &b),
            (Op::ConjTrans, Op::No, &ah, &b),
            (Op::No, Op::ConjTrans, &a, &bh),
            (Op::ConjTrans, Op::ConjTrans, &ah, &bh),
        ] {
            let mut c = CMatrix::zeros(m, n);
            zgemm(
                oa,
                ob,
                m,
                n,
                k,
                C64::ONE,
                am.as_slice(),
                am.rows(),
                bm.as_slice(),
                bm.rows(),
                C64::ZERO,
                c.as_mut_slice(),
                m,
            );
            assert!(c.max_diff(&want) < 1e-13, "{oa:?} {ob:?}");
        }
    }

    #[test]
    fn zhemm_matches_dense() {
        let n = 7;
        let k = 3;
        let a = rand_hermitian(n, 3);
        let b = rand_cmat(n, k, 4);
        let mut c = CMatrix::zeros(n, k);
        zhemm_lower_left(
            n,
            k,
            C64::ONE,
            a.as_slice(),
            n,
            b.as_slice(),
            n,
            C64::ZERO,
            c.as_mut_slice(),
            n,
        );
        assert!(c.max_diff(&a.multiply(&b)) < 1e-13);
    }

    #[test]
    fn zher2k_matches_dense() {
        let n = 6;
        let k = 3;
        let x = rand_cmat(n, k, 5);
        let y = rand_cmat(n, k, 6);
        let mut a = rand_hermitian(n, 7);
        let want = {
            let mut w = a.clone();
            let xyh = x.multiply(&y.adjoint());
            let yxh = y.multiply(&x.adjoint());
            for j in 0..n {
                for i in 0..n {
                    let adds = (xyh[(i, j)] + yxh[(i, j)]).scale(0.5);
                    w[(i, j)] += adds;
                }
            }
            w.hermitize_from_lower();
            w
        };
        zher2k_lower(
            n,
            k,
            0.5,
            x.as_slice(),
            n,
            y.as_slice(),
            n,
            a.as_mut_slice(),
            n,
        );
        for j in 0..n {
            for i in j..n {
                assert!((a[(i, j)] - want[(i, j)]).abs() < 1e-13, "({i},{j})");
            }
        }
    }

    #[test]
    fn zlarfg_real_beta_and_annihilation() {
        let alpha = c64(0.3, -0.7);
        let mut x = vec![c64(1.0, 0.5), c64(-0.2, 0.8)];
        let x0 = x.clone();
        let (beta, tau) = zlarfg(alpha, &mut x);
        // H^H [alpha, x] must equal [beta, 0, 0] with beta real.
        let v = [C64::ONE, x[0], x[1]];
        let orig = [alpha, x0[0], x0[1]];
        // H^H y = y - conj(tau) v (v^H y).
        let vhy: C64 = orig
            .iter()
            .zip(&v)
            .map(|(y, vi)| y.mul_conj(*vi))
            .fold(C64::ZERO, |a, b| a + b);
        let out: Vec<C64> = orig
            .iter()
            .zip(&v)
            .map(|(y, vi)| *y - *vi * tau.conj() * vhy)
            .collect();
        assert!((out[0] - c64(beta, 0.0)).abs() < 1e-13, "{:?}", out[0]);
        assert!(out[1].abs() < 1e-13 && out[2].abs() < 1e-13);
        // |beta| == ||[alpha, x]||.
        let nrm = (alpha.abs2() + x0[0].abs2() + x0[1].abs2()).sqrt();
        assert!((beta.abs() - nrm).abs() < 1e-13);
    }

    #[test]
    fn reflector_unitary() {
        let mut x = vec![c64(0.4, -0.1), c64(0.2, 0.9), c64(-0.6, 0.3)];
        let (_, tau) = zlarfg(c64(1.0, 0.2), &mut x);
        let mut v = vec![C64::ONE];
        v.extend_from_slice(&x);
        let n = v.len();
        // H = I - tau v v^H; check H H^H = I.
        let h = CMatrix::from_fn(n, n, |i, j| {
            let idp = if i == j { C64::ONE } else { C64::ZERO };
            idp - tau * v[i] * v[j].conj()
        });
        let prod = h.multiply(&h.adjoint());
        assert!(prod.max_diff(&CMatrix::identity(n)) < 1e-13);
    }

    #[test]
    fn zlarf_left_right_match_dense() {
        let (m, n) = (5, 4);
        let mut x = vec![c64(0.3, 0.2), c64(-0.4, 0.6), c64(0.1, -0.9), c64(0.5, 0.0)];
        let (_, tau) = zlarfg(c64(0.7, -0.3), &mut x);
        let mut v = vec![C64::ONE];
        v.extend_from_slice(&x);
        let h = CMatrix::from_fn(m, m, |i, j| {
            let idp = if i == j { C64::ONE } else { C64::ZERO };
            idp - tau * v[i] * v[j].conj()
        });
        let c0 = rand_cmat(m, n, 9);
        let mut work = vec![C64::ZERO; m.max(n)];

        let mut c = c0.clone();
        zlarf_left(&v, tau, m, n, c.as_mut_slice(), m, &mut work);
        assert!(c.max_diff(&h.multiply(&c0)) < 1e-13);

        let c0t = rand_cmat(n, m, 10);
        let mut cr = c0t.clone();
        zlarf_right(&v, tau, n, m, cr.as_mut_slice(), n, &mut work);
        assert!(cr.max_diff(&c0t.multiply(&h)) < 1e-13);
    }

    #[test]
    fn zlarft_block_identity() {
        let m = 7;
        let k = 3;
        let mut v = CMatrix::zeros(m, k);
        let mut taus = vec![C64::ZERO; k];
        for c in 0..k {
            let mut tail: Vec<C64> = (0..m - c - 1)
                .map(|r| {
                    c64(
                        ((r + c) % 3) as f64 * 0.3 - 0.2,
                        ((r * c + 1) % 4) as f64 * 0.25,
                    )
                })
                .collect();
            let (_, tau) = zlarfg(c64(0.4, 0.1), &mut tail);
            v[(c, c)] = C64::ONE;
            for (r, &val) in tail.iter().enumerate() {
                v[(c + 1 + r, c)] = val;
            }
            taus[c] = tau;
        }
        let mut t = vec![C64::ZERO; k * k];
        zlarft(m, k, v.as_slice(), m, &taus, &mut t, k);
        // Dense product H_1 H_2 H_3.
        let mut hprod = CMatrix::identity(m);
        for c in 0..k {
            let vc: Vec<C64> = (0..m).map(|r| v[(r, c)]).collect();
            let hc = CMatrix::from_fn(m, m, |i, j| {
                let idp = if i == j { C64::ONE } else { C64::ZERO };
                idp - taus[c] * vc[i] * vc[j].conj()
            });
            hprod = hprod.multiply(&hc);
        }
        // I - V T V^H.
        let tm = CMatrix::from_fn(k, k, |i, j| t[i + j * k]);
        let vtv = v.multiply(&tm).multiply(&v.adjoint());
        let got = CMatrix::from_fn(m, m, |i, j| {
            let idp = if i == j { C64::ONE } else { C64::ZERO };
            idp - vtv[(i, j)]
        });
        assert!(got.max_diff(&hprod) < 1e-12);
    }

    #[test]
    fn zgeqr2_reconstructs() {
        let (m, n) = (8, 5);
        let a0 = rand_cmat(m, n, 11);
        let mut a = a0.clone();
        let mut tau = vec![C64::ZERO; n];
        zgeqr2(m, n, a.as_mut_slice(), m, &mut tau);
        // Materialize Q by applying reflectors to I in reverse.
        let mut q = CMatrix::identity(m);
        let mut u = vec![C64::ZERO; m];
        let mut work = vec![C64::ZERO; m];
        for j in (0..n).rev() {
            let rows = m - j;
            u[0] = C64::ONE;
            for r in 1..rows {
                u[r] = a[(j + r, j)];
            }
            let ldq = q.ld();
            zlarf_left(
                &u[..rows],
                tau[j],
                rows,
                m,
                &mut q.as_mut_slice()[j..],
                ldq,
                &mut work,
            );
        }
        let r = CMatrix::from_fn(m, n, |i, j| if i <= j { a[(i, j)] } else { C64::ZERO });
        assert!(q.multiply(&r).max_diff(&a0) < 1e-12, "QR != A");
        // Q unitary.
        assert!(q.multiply(&q.adjoint()).max_diff(&CMatrix::identity(m)) < 1e-12);
    }
}
