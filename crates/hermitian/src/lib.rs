//! Two-stage **Hermitian** eigensolver — the complex counterpart of
//! `tseig-core`.
//!
//! The paper's algorithm is stated for "symmetric (or hermitian)"
//! matrices; this crate carries the complex case end to end:
//!
//! 1. [`stage1::he2hb`] — dense Hermitian → Hermitian band, blocked
//!    complex Householder panels and the `her2k`-form two-sided update,
//! 2. [`stage2::reduce`] — band → tridiagonal bulge chasing with the same
//!    three kernels in complex arithmetic; every sub-diagonal produced by
//!    an elimination is *real* by `zlarfg`'s convention,
//! 3. phase folding — any residual complex off-diagonals are rotated real
//!    by a unitary diagonal `D` (LAPACK `zhetrd` convention), so the
//!    tridiagonal eigensolve happens entirely in **real** arithmetic via
//!    `tseig-tridiag`,
//! 4. [`backtransform`] — `Z = Q1 Q2 D E`, diamond-blocked exactly like
//!    the real pipeline.
//!
//! Entry point: [`driver::HermitianEigen`]. Validation helpers (complex
//! residual/orthogonality, a real `2n x 2n` embedding oracle) live in
//! [`validate`].
//!
//! The whole pipeline is generic over the complex element width through
//! [`HermScalar`]: `CMatrixG<C64>` (= `CMatrix`) gives the
//! `zheev`-equivalent solve, `CMatrixG<C32>` the `cheev`-equivalent one,
//! both through the same packed SIMD GEMM engine and with verification
//! tolerances scaled by the element type's epsilon.

pub mod backtransform;
pub mod ckernels;
pub mod driver;
pub mod generalized;
pub mod stage1;
pub mod stage2;
pub mod validate;

pub use backtransform::HermScalar;
pub use driver::{HermitianEigen, HermitianResult, VERIFY_BOUND};
pub use stage2::Scheduler;
pub use tseig_matrix::diagnostics::{Recovery, SolveDiagnostics, VerifyLevel, VerifyReport};
