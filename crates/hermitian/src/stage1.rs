//! Stage 1 (Hermitian): dense to Hermitian band (`he2hb`).
//!
//! Mirror of `tseig_core::stage1::sy2sb` in complex arithmetic: QR-factor
//! each sub-panel, apply `Q = I - V T V^H` two-sided via the Hermitian
//! rank-2k form
//!
//! ```text
//! W = A V T,  M = V^H W,  X = W - 1/2 V (T^H M),
//! A <- A - V X^H - X V^H            (her2k)
//! ```

use crate::ckernels::{zgemm, zgeqr2, zhemm_lower_left, zher2k_lower, zlarft, Op};
use tseig_kernels::blas3::engine::GemmScalar;
use tseig_matrix::{CMatrixG, ComplexScalar, Ctrl, C64};

/// One panel's block reflector, acting on rows `r0..n`.
pub struct Q1PanelC<T: ComplexScalar = C64> {
    pub r0: usize,
    /// `(n - r0) x kb`, explicit unit diagonal.
    pub v: CMatrixG<T>,
    /// `kb x kb` upper triangular, clean lower part.
    pub t: Vec<T>,
}

/// Result of the Hermitian band reduction. The band is kept as a dense
/// Hermitian matrix with entries zeroed outside the band (complex band
/// storage would mirror `SymBandMatrix`; dense keeps this crate compact
/// while stage 2 still only touches band-window blocks).
pub struct BandFormC<T: ComplexScalar = C64> {
    pub band: CMatrixG<T>,
    pub panels: Vec<Q1PanelC<T>>,
    pub nb: usize,
}

/// Reduce the dense Hermitian `a` (lower triangle referenced) to band
/// form with semi-bandwidth `nb`.
pub fn he2hb<T: ComplexScalar + GemmScalar>(a: &CMatrixG<T>, nb: usize) -> BandFormC<T> {
    match he2hb_with(a, nb, &Ctrl::NONE) {
        Ok(form) => form,
        // Unreachable: the inert control never fails a checkpoint.
        Err(e) => unreachable!("inert control failed: {e}"),
    }
}

/// [`he2hb`] under a request control: polls `ctrl` once per panel so an
/// armed cancel or expired deadline aborts between panels with the
/// structured error and no partial output escapes.
pub fn he2hb_with<T: ComplexScalar + GemmScalar>(
    a: &CMatrixG<T>,
    nb: usize,
    ctrl: &Ctrl,
) -> tseig_matrix::Result<BandFormC<T>> {
    assert_eq!(a.rows(), a.cols());
    let n = a.rows();
    let nb = nb.max(1);
    let mut a = a.clone();
    a.hermitize_from_lower();
    let lda = a.ld();
    let mut panels = Vec::new();

    let mut j0 = 0usize;
    while j0 + nb < n {
        ctrl.checkpoint()?;
        let r0 = j0 + nb;
        let m = n - r0;
        let kb = nb.min(m);
        let mut tau = vec![T::ZERO; kb];
        {
            let panel = &mut a.as_mut_slice()[r0 + j0 * lda..];
            zgeqr2(m, nb, panel, lda, &mut tau);
        }
        // Extract clean V and T.
        let mut v = CMatrixG::zeros(m, kb);
        for col in 0..kb {
            v[(col, col)] = T::ONE;
            for r in col + 1..m {
                v[(r, col)] = a.as_slice()[r0 + r + (j0 + col) * lda];
            }
        }
        let mut t = vec![T::ZERO; kb * kb];
        zlarft(m, kb, v.as_slice(), m, &tau, &mut t, kb);
        // Zero the annihilated part below the R factor, and mirror the
        // panel's new band block into the upper triangle.
        for jj in 0..nb {
            for i in (r0 + jj + 1).min(n)..n {
                a[(i, j0 + jj)] = T::ZERO;
            }
        }
        for jj in 0..nb {
            for i in j0 + jj..n.min(r0 + jj + 1) {
                let val = a[(i, j0 + jj)];
                a[(j0 + jj, i)] = val.conj();
            }
        }
        two_sided_update(&mut a, r0, &v, &t);
        panels.push(Q1PanelC { r0, v, t });
        j0 += nb;
    }

    // Zero everything outside the band for a clean band form, and make
    // the matrix exactly Hermitian.
    for j in 0..n {
        for i in j + nb + 1..n {
            a[(i, j)] = T::ZERO;
        }
    }
    a.hermitize_from_lower();
    Ok(BandFormC {
        band: a,
        panels,
        nb,
    })
}

/// `A2 <- Q^H A2 Q` on the trailing block at `r0` (Hermitian rank-2k).
fn two_sided_update<T: ComplexScalar + GemmScalar>(
    a: &mut CMatrixG<T>,
    r0: usize,
    v: &CMatrixG<T>,
    t: &[T],
) {
    let n = a.rows();
    let lda = a.ld();
    let m = n - r0;
    let kb = v.cols();
    if m == 0 || kb == 0 {
        return;
    }
    // VT = V T.
    let mut vt = CMatrixG::zeros(m, kb);
    zgemm(
        Op::No,
        Op::No,
        m,
        kb,
        kb,
        T::ONE,
        v.as_slice(),
        m,
        t,
        kb,
        T::ZERO,
        vt.as_mut_slice(),
        m,
    );
    // W = A2 VT (Hermitian multiply).
    let mut w = CMatrixG::zeros(m, kb);
    {
        let a2 = &a.as_slice()[r0 + r0 * lda..];
        zhemm_lower_left(
            m,
            kb,
            T::ONE,
            a2,
            lda,
            vt.as_slice(),
            m,
            T::ZERO,
            w.as_mut_slice(),
            m,
        );
    }
    // M = V^H W.
    let mut mm = vec![T::ZERO; kb * kb];
    zgemm(
        Op::ConjTrans,
        Op::No,
        kb,
        kb,
        m,
        T::ONE,
        v.as_slice(),
        m,
        w.as_slice(),
        m,
        T::ZERO,
        &mut mm,
        kb,
    );
    // TM = T^H M.
    let mut tm = vec![T::ZERO; kb * kb];
    zgemm(
        Op::ConjTrans,
        Op::No,
        kb,
        kb,
        kb,
        T::ONE,
        t,
        kb,
        &mm,
        kb,
        T::ZERO,
        &mut tm,
        kb,
    );
    // X = W - 1/2 V TM.
    let mut x = w;
    zgemm(
        Op::No,
        Op::No,
        m,
        kb,
        kb,
        T::new(-0.5, 0.0),
        v.as_slice(),
        m,
        &tm,
        kb,
        T::ONE,
        x.as_mut_slice(),
        m,
    );
    // A2 -= V X^H + X V^H.
    {
        let a2 = &mut a.as_mut_slice()[r0 + r0 * lda..];
        zher2k_lower(m, kb, -1.0, v.as_slice(), m, x.as_slice(), m, a2, lda);
    }
    // Restore exact Hermitian symmetry of the trailing block (the upper
    // triangle is stale after the lower-only update).
    for j in r0..n {
        for i in j + 1..n {
            let val = a[(i, j)];
            a[(j, i)] = val.conj();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{rand_hermitian, real_embedding_eigenvalues};
    use tseig_matrix::{c64, CMatrix};

    /// Materialize Q1 = Q_0 Q_1 ... explicitly (tests only).
    pub(crate) fn form_q1(bf: &BandFormC, n: usize) -> CMatrix {
        let mut q = CMatrix::identity(n);
        for p in &bf.panels {
            // Q <- Q (I - V T V^H): W = Q[:, r0..] V; Q[:, r0..] -= W T V^H.
            let m = n - p.r0;
            let kb = p.v.cols();
            let mut w = CMatrix::zeros(n, kb);
            let ldq = q.ld();
            zgemm(
                Op::No,
                Op::No,
                n,
                kb,
                m,
                C64::ONE,
                &q.as_slice()[p.r0 * ldq..],
                ldq,
                p.v.as_slice(),
                m,
                C64::ZERO,
                w.as_mut_slice(),
                n,
            );
            let mut wt = CMatrix::zeros(n, kb);
            zgemm(
                Op::No,
                Op::No,
                n,
                kb,
                kb,
                C64::ONE,
                w.as_slice(),
                n,
                &p.t,
                kb,
                C64::ZERO,
                wt.as_mut_slice(),
                n,
            );
            zgemm(
                Op::No,
                Op::ConjTrans,
                n,
                m,
                kb,
                c64(-1.0, 0.0),
                wt.as_slice(),
                n,
                p.v.as_slice(),
                m,
                C64::ONE,
                &mut q.as_mut_slice()[p.r0 * ldq..],
                ldq,
            );
        }
        q
    }

    #[test]
    fn band_structure_and_reconstruction() {
        let n = 24;
        let nb = 5;
        let a = rand_hermitian(n, 41);
        let bf = he2hb(&a, nb);
        // Banded.
        for j in 0..n {
            for i in j + nb + 1..n {
                assert_eq!(bf.band[(i, j)], C64::ZERO);
            }
        }
        // Q1 B Q1^H == A.
        let q = form_q1(&bf, n);
        let qbq = q.multiply(&bf.band).multiply(&q.adjoint());
        assert!(qbq.max_diff(&a) < 1e-11 * n as f64, "Q1 B Q1^H != A");
        // Q1 unitary.
        assert!(q.multiply(&q.adjoint()).max_diff(&CMatrix::identity(n)) < 1e-11);
    }

    #[test]
    fn spectrum_preserved() {
        let n = 20;
        let a = rand_hermitian(n, 42);
        let bf = he2hb(&a, 4);
        let want = real_embedding_eigenvalues(&a);
        let got = real_embedding_eigenvalues(&bf.band);
        assert!(
            tseig_matrix::norms::eigenvalue_distance(&got, &want) < 1e-9,
            "band spectrum differs"
        );
    }

    #[test]
    fn wide_band_no_panels() {
        let a = rand_hermitian(5, 43);
        let bf = he2hb(&a, 8);
        assert!(bf.panels.is_empty());
        assert!(bf.band.max_diff(&a) < 1e-14);
    }
}
