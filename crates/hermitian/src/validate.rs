//! Validation utilities for the Hermitian pipeline.
//!
//! The eigenvalue oracle uses the classical *real embedding*: for
//! `A = X + iY` Hermitian (`X` symmetric, `Y` antisymmetric), the real
//! `2n x 2n` matrix `[[X, -Y], [Y, X]]` is symmetric with each eigenvalue
//! of `A` appearing exactly twice — so the real pipeline (already
//! validated against closed forms) certifies the complex one.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tseig_matrix::{c64, CMatrix, CMatrixG, ComplexScalar, Matrix};

/// Random dense Hermitian matrix with entries in the unit box.
pub fn rand_hermitian(n: usize, seed: u64) -> CMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut a = CMatrix::from_fn(n, n, |_, _| {
        c64(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
    });
    a.hermitize_from_lower();
    a
}

/// Hermitian matrix with a prescribed (real) spectrum: random unitary
/// similarity built from complex Householder reflections.
pub fn hermitian_with_spectrum(lambda: &[f64], seed: u64) -> CMatrix {
    use crate::ckernels::{zlarf_left, zlarf_right, zlarfg};
    use tseig_matrix::C64;
    let n = lambda.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut a = CMatrix::zeros(n, n);
    for i in 0..n {
        a[(i, i)] = c64(lambda[i], 0.0);
    }
    let mut work = vec![C64::ZERO; n];
    for k in 0..n {
        let len = n - k;
        if len < 2 {
            continue;
        }
        let mut x: Vec<C64> = (0..len - 1)
            .map(|_| c64(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let alpha = c64(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
        let (_, tau) = zlarfg(alpha, &mut x);
        let mut v = vec![C64::ONE];
        v.extend_from_slice(&x);
        // A <- H^H A H  (unitary similarity preserves the spectrum).
        let lda = a.ld();
        zlarf_left(
            &v,
            tau.conj(),
            len,
            n,
            &mut a.as_mut_slice()[k..],
            lda,
            &mut work,
        );
        // Right application on columns k..n.
        zlarf_right(
            &v,
            tau,
            n,
            len,
            &mut a.as_mut_slice()[k * lda..],
            lda,
            &mut work,
        );
    }
    a.hermitize_from_lower();
    a
}

/// Real symmetric `2n x 2n` embedding `[[X, -Y], [Y, X]]`. Components
/// are widened to `f64` for narrower element types, so the oracle runs
/// at full precision either way.
pub fn real_embedding<T: ComplexScalar>(a: &CMatrixG<T>) -> Matrix {
    let n = a.rows();
    Matrix::from_fn(2 * n, 2 * n, |i, j| {
        let (bi, ii) = (i / n, i % n);
        let (bj, jj) = (j / n, j % n);
        match (bi, bj) {
            (0, 0) | (1, 1) => a[(ii, jj)].re(),
            (0, 1) => -a[(ii, jj)].im(),
            _ => a[(ii, jj)].im(),
        }
    })
}

/// Oracle eigenvalues of a Hermitian matrix: solve the real embedding
/// (every eigenvalue doubled) and take every second one.
pub fn real_embedding_eigenvalues<T: ComplexScalar>(a: &CMatrixG<T>) -> Vec<f64> {
    let m = real_embedding(a);
    let f = tseig_onestage_free_eig(&m);
    f.iter().step_by(2).copied().collect()
}

/// Eigenvalues of a real symmetric matrix without depending on
/// `tseig-onestage` (QR on the Jacobi oracle would be circular enough —
/// use the independent Jacobi reference from `tseig-kernels`).
fn tseig_onestage_free_eig(m: &Matrix) -> Vec<f64> {
    tseig_kernels::reference::jacobi_eigen(m, false)
        .expect("oracle convergence")
        .eigenvalues
}

/// Scaled residual `max |A Z - Z diag(lambda)| / (||A||_1 n eps)`,
/// with `eps` the element type's precision so the usual O(1)–O(100)
/// acceptance range holds for C32 and C64 alike.
pub fn hermitian_residual<T: ComplexScalar>(
    a: &CMatrixG<T>,
    lambda: &[f64],
    z: &CMatrixG<T>,
) -> f64 {
    let n = a.rows();
    let az = a.multiply(z);
    let mut worst = 0.0f64;
    for j in 0..z.cols() {
        for i in 0..n {
            let diff = az[(i, j)] - z[(i, j)].scale(lambda[j]);
            worst = worst.max(diff.abs());
        }
    }
    let norm1 = (0..n)
        .map(|j| (0..n).map(|i| a[(i, j)].abs()).sum::<f64>())
        .fold(0.0f64, f64::max);
    worst / (norm1.max(f64::MIN_POSITIVE) * n as f64 * T::EPS / 2.0)
}

/// `||Z^H Z - I||_max / (n eps)` with the element type's `eps`.
pub fn unitary_error<T: ComplexScalar>(z: &CMatrixG<T>) -> f64 {
    let g = z.adjoint().multiply(z);
    let k = z.cols();
    let mut worst = 0.0f64;
    for j in 0..k {
        for i in 0..k {
            let target = if i == j { 1.0 } else { 0.0 };
            worst = worst.max((g[(i, j)] - T::new(target, 0.0)).abs());
        }
    }
    worst / (z.rows() as f64 * T::EPS / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tseig_matrix::norms;

    #[test]
    fn embedding_doubles_spectrum() {
        let n = 8;
        let a = rand_hermitian(n, 50);
        let m = real_embedding(&a);
        // The embedding is symmetric.
        for i in 0..2 * n {
            for j in 0..2 * n {
                assert!((m[(i, j)] - m[(j, i)]).abs() < 1e-15);
            }
        }
        let all = tseig_kernels::reference::jacobi_eigen(&m, false)
            .unwrap()
            .eigenvalues;
        // Pairs.
        for p in 0..n {
            assert!((all[2 * p] - all[2 * p + 1]).abs() < 1e-9, "pair {p}");
        }
    }

    #[test]
    fn prescribed_spectrum_generator() {
        let lambda: Vec<f64> = (0..10).map(|i| i as f64 - 4.0).collect();
        let a = hermitian_with_spectrum(&lambda, 51);
        // Hermitian.
        for i in 0..10 {
            assert!(a[(i, i)].im.abs() < 1e-12);
            for j in 0..10 {
                assert!((a[(i, j)] - a[(j, i)].conj()).abs() < 1e-12);
            }
        }
        // Not still diagonal.
        assert!(a[(9, 0)].abs() > 1e-8);
        let got = real_embedding_eigenvalues(&a);
        assert!(norms::eigenvalue_distance(&got, &lambda) < 1e-9);
    }

    #[test]
    fn residual_zero_for_diagonal() {
        let n = 4;
        let a = CMatrix::from_fn(n, n, |i, j| {
            if i == j {
                c64(i as f64 + 1.0, 0.0)
            } else {
                c64(0.0, 0.0)
            }
        });
        let z = CMatrix::identity(n);
        assert_eq!(hermitian_residual(&a, &[1.0, 2.0, 3.0, 4.0], &z), 0.0);
        assert_eq!(unitary_error(&z), 0.0);
    }
}
