//! Property tests for the Hermitian pipeline.

use proptest::prelude::*;
use tseig_hermitian::{validate, HermitianEigen};
use tseig_matrix::norms;

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Full pipeline vs the real-embedding oracle on random Hermitian
    /// input, across band widths.
    #[test]
    fn pipeline_matches_embedding(n in 2usize..22, nb in 1usize..8, seed in 0u64..300) {
        let a = validate::rand_hermitian(n, seed);
        let want = validate::real_embedding_eigenvalues(&a);
        let r = HermitianEigen::new().nb(nb).solve(&a).unwrap();
        prop_assert!(
            norms::eigenvalue_distance(&r.eigenvalues, &want) < 1e-8,
            "eigenvalues differ (n={}, nb={})", n, nb
        );
        let z = r.eigenvectors.as_ref().unwrap();
        prop_assert!(validate::hermitian_residual(&a, &r.eigenvalues, z) < 1000.0);
        prop_assert!(validate::unitary_error(z) < 1000.0);
        // Trace invariant (diagonal of a Hermitian matrix is real).
        let tr: f64 = (0..n).map(|i| a[(i, i)].re).sum();
        let sl: f64 = r.eigenvalues.iter().sum();
        prop_assert!((tr - sl).abs() < 1e-8 * (1.0 + tr.abs()));
    }

    /// Prescribed spectra are recovered through the complex pipeline.
    #[test]
    fn prescribed_spectrum(n in 2usize..20, seed in 0u64..300, lo in -3.0f64..0.0, w in 0.5f64..5.0) {
        let lambda = tseig_matrix::gen::linspace(lo, lo + w, n);
        let a = validate::hermitian_with_spectrum(&lambda, seed);
        let r = HermitianEigen::new().nb(4).solve(&a).unwrap();
        prop_assert!(norms::eigenvalue_distance(&r.eigenvalues, &lambda) < 1e-8);
    }
}
