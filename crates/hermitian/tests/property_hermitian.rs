//! Property tests for the Hermitian pipeline.

use proptest::prelude::*;
use tseig_hermitian::ckernels::{zgemm, zgemm_oracle, Op};
use tseig_hermitian::{validate, HermitianEigen};
use tseig_matrix::{c64, norms, C64};

/// Deterministic pseudo-random complex value from an index mix.
fn cval(seed: u64, i: usize) -> C64 {
    let mut x = seed
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(i as u64)
        .wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 31;
    let re = ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
    let im = (((x.wrapping_mul(0x94d049bb133111eb)) >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
    c64(re, im)
}

fn cmat(rows: usize, ld: usize, cols: usize, seed: u64) -> Vec<C64> {
    let _ = rows;
    (0..ld * cols).map(|i| cval(seed, i)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Packed complex GEMM against the naive triple-loop oracle on
    /// ragged shapes, all four conj-op combos, `k` straddling the
    /// packed engine's `KC = 256` so multiple depth panels (and the
    /// `beta`-after-first-panel path) are exercised, with padded `ld`s.
    #[test]
    fn packed_zgemm_matches_oracle_ragged(
        m in 1usize..40,
        n in 1usize..24,
        k in 200usize..320,
        pad in 0usize..3,
        seed in 0u64..1000,
    ) {
        for (opa, opb) in [
            (Op::No, Op::No),
            (Op::No, Op::ConjTrans),
            (Op::ConjTrans, Op::No),
            (Op::ConjTrans, Op::ConjTrans),
        ] {
            let (ar, ac) = match opa { Op::No => (m, k), _ => (k, m) };
            let (br, bc) = match opb { Op::No => (k, n), _ => (n, k) };
            let (lda, ldb, ldc) = (ar + pad, br + pad, m + pad);
            let a = cmat(ar, lda, ac, seed);
            let b = cmat(br, ldb, bc, seed ^ 0x55);
            let c0 = cmat(m, ldc, n, seed ^ 0xaa);
            let alpha = cval(seed ^ 0x77, 1);
            let beta = cval(seed ^ 0x77, 2);

            let mut packed = c0.clone();
            zgemm(opa, opb, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut packed, ldc);
            let mut naive = c0.clone();
            zgemm_oracle(opa, opb, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut naive, ldc);

            let scale = k as f64;
            for j in 0..n {
                for i in 0..m {
                    let d = (packed[i + j * ldc] - naive[i + j * ldc]).abs();
                    prop_assert!(
                        d < 1e-12 * scale,
                        "mismatch at ({i},{j}): {d:e} (opa={opa:?}, opb={opb:?}, m={m}, n={n}, k={k})"
                    );
                }
            }
        }
    }

    /// Full pipeline vs the real-embedding oracle on random Hermitian
    /// input, across band widths.
    #[test]
    fn pipeline_matches_embedding(n in 2usize..22, nb in 1usize..8, seed in 0u64..300) {
        let a = validate::rand_hermitian(n, seed);
        let want = validate::real_embedding_eigenvalues(&a);
        let r = HermitianEigen::new().nb(nb).solve(&a).unwrap();
        prop_assert!(
            norms::eigenvalue_distance(&r.eigenvalues, &want) < 1e-8,
            "eigenvalues differ (n={}, nb={})", n, nb
        );
        let z = r.eigenvectors.as_ref().unwrap();
        prop_assert!(validate::hermitian_residual(&a, &r.eigenvalues, z) < 1000.0);
        prop_assert!(validate::unitary_error(z) < 1000.0);
        // Trace invariant (diagonal of a Hermitian matrix is real).
        let tr: f64 = (0..n).map(|i| a[(i, i)].re).sum();
        let sl: f64 = r.eigenvalues.iter().sum();
        prop_assert!((tr - sl).abs() < 1e-8 * (1.0 + tr.abs()));
    }

    /// Prescribed spectra are recovered through the complex pipeline.
    #[test]
    fn prescribed_spectrum(n in 2usize..20, seed in 0u64..300, lo in -3.0f64..0.0, w in 0.5f64..5.0) {
        let lambda = tseig_matrix::gen::linspace(lo, lo + w, n);
        let a = validate::hermitian_with_spectrum(&lambda, seed);
        let r = HermitianEigen::new().nb(4).solve(&a).unwrap();
        prop_assert!(norms::eigenvalue_distance(&r.eigenvalues, &lambda) < 1e-8);
    }
}

/// End-to-end solve at an `n` that is *not* divisible by the fused
/// back-transform's column-panel width (`DEFAULT_PANEL_COLS = 64`), so
/// the panel loop runs a full panel plus a ragged tail — against the
/// independent `2n x 2n` real-embedding oracle.
#[test]
fn end_to_end_at_ragged_panel_width() {
    let n = 67;
    assert!(n > tseig_hermitian::backtransform::DEFAULT_PANEL_COLS);
    assert!(n % tseig_hermitian::backtransform::DEFAULT_PANEL_COLS != 0);
    let a = validate::rand_hermitian(n, 2024);
    let want = validate::real_embedding_eigenvalues(&a);
    let r = HermitianEigen::new().nb(8).solve(&a).unwrap();
    assert!(norms::eigenvalue_distance(&r.eigenvalues, &want) < 1e-8);
    let z = r.eigenvectors.as_ref().unwrap();
    assert!(validate::hermitian_residual(&a, &r.eigenvalues, z) < 1000.0);
    assert!(validate::unitary_error(z) < 1000.0);
}
