//! Modal analysis: vibration modes of a 2-D membrane.
//!
//! The discrete Dirichlet Laplacian on an `nx x ny` grid is the stiffness
//! matrix of a vibrating membrane; its eigenpairs are the vibration
//! frequencies and mode shapes, with *exact* analytic values
//! `lambda_{j,k} = 4 sin^2(j pi / 2(nx+1)) + 4 sin^2(k pi / 2(ny+1))` —
//! a rare workload where the eigensolver can be checked against closed
//! forms.
//!
//! ```text
//! cargo run --release -p tseig-core --example vibration_modes [nx] [ny]
//! ```

use tseig_core::SymmetricEigen;
use tseig_matrix::{gen, norms};

fn exact_modes(nx: usize, ny: usize) -> Vec<f64> {
    let s = |j: usize, m: usize| {
        let t = (j as f64) * std::f64::consts::PI / (2.0 * (m as f64 + 1.0));
        4.0 * t.sin() * t.sin()
    };
    let mut v: Vec<f64> = (1..=nx)
        .flat_map(|j| (1..=ny).map(move |k| s(j, nx) + s(k, ny)))
        .collect();
    v.sort_by(|a, b| a.total_cmp(b));
    v
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nx: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(18);
    let ny: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(17);
    let n = nx * ny;
    println!("membrane modes: {nx} x {ny} grid (n = {n})");

    let a = gen::laplacian_2d(nx, ny);
    let exact = exact_modes(nx, ny);

    let r = SymmetricEigen::new().nb(16).solve(&a)?;
    let z = r
        .eigenvectors
        .as_ref()
        .ok_or("solver returned no eigenvectors")?;

    let err = norms::eigenvalue_distance(&r.eigenvalues, &exact);
    let residual = norms::eigen_residual(&a, &r.eigenvalues, z);
    println!("eigenvalue error vs closed form : {err:.3e}");
    println!("scaled residual                 : {residual:.1}");

    // Report the fundamental and first overtones (frequencies ~ sqrt(lambda)).
    println!("lowest five modes (frequency = sqrt(lambda)):");
    for (i, (&lam, &ex)) in r.eigenvalues.iter().zip(exact.iter()).take(5).enumerate() {
        println!(
            "  mode {i}: lambda = {:.6}  freq = {:.6}  (exact {:.6})",
            lam,
            lam.sqrt(),
            ex
        );
    }

    // The fundamental mode of a membrane has no interior sign change:
    // all components share one sign.
    let fundamental = z.col(0);
    let pos = fundamental.iter().filter(|v| **v > 0.0).count();
    if pos != 0 && pos != n {
        return Err(format!("fundamental mode changes sign ({pos}/{n} positive)").into());
    }

    if !(err < 1e-10 && residual < 1000.0) {
        return Err("result failed its quality checks".into());
    }
    println!("all checks passed");
    Ok(())
}
