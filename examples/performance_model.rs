//! Explore the paper's Section-4 performance model on this machine.
//!
//! Measures `alpha` (gemm rate) and `beta` (symv rate) with the
//! workspace's own kernels, then prints Table-3-style parameters, the
//! Eq.-(6) crossover size, and the predicted one- vs two-stage times
//! (Eqs. (4)-(5)) over a size sweep.
//!
//! ```text
//! cargo run --release -p tseig-perfmodel --example performance_model
//! ```

use tseig_perfmodel::{crossover_n, measure_machine, t_one_stage, t_two_stage};

fn main() {
    println!("calibrating machine parameters (paper Table 3)...");
    let mp = measure_machine(1024);
    println!(
        "  alpha (gemm, 1 core)  : {:>8.2} Gflop/s",
        mp.alpha_core / 1e9
    );
    println!(
        "  alpha (gemm, p cores) : {:>8.2} Gflop/s",
        mp.alpha_par / 1e9
    );
    println!("  beta  (symv)          : {:>8.2} Gflop/s", mp.beta / 1e9);
    println!("  p                     : {:>8}", mp.p);
    println!(
        "  alpha*p/beta          : {:>8.1}  (paper: 'a few orders of magnitude')",
        mp.alpha_core * mp.p as f64 / mp.beta
    );

    for f in [1.0, 0.2] {
        let m = mp.model(64, f);
        println!("\nf = {f} (fraction of eigenvectors), D = nb = 64:");
        match crossover_n(&m) {
            Some(nc) => {
                println!("  crossover size n* (Eq. 6): {nc:.0} — two-stage wins beyond this")
            }
            None => println!("  no crossover: one-stage always wins on these parameters"),
        }
        println!(
            "  {:>8} {:>12} {:>12} {:>9}",
            "n", "t_1s (s)", "t_2s (s)", "speedup"
        );
        for n in [500usize, 1000, 2000, 4000, 8000, 16000, 24000] {
            let t1 = t_one_stage(n, &m);
            let t2 = t_two_stage(n, &m);
            println!("  {n:>8} {t1:>12.3} {t2:>12.3} {:>9.2}", t1 / t2);
        }
    }

    println!("\n(the speedup column is the model's prediction of the paper's Figure 4 curves)");
}
