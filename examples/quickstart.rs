//! Quickstart: solve a dense symmetric eigenproblem with the two-stage
//! algorithm and verify the result.
//!
//! Run with:
//! ```text
//! cargo run --release -p tseig-core --example quickstart [n]
//! ```

use tseig_core::SymmetricEigen;
use tseig_matrix::{gen, norms};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);

    // A random symmetric matrix with a *known* spectrum: the cleanest way
    // to see the solver work end to end.
    let lambda = gen::linspace(-1.0, 1.0, n);
    let a = gen::symmetric_with_spectrum(&lambda, 42);

    println!("solving a {n} x {n} symmetric eigenproblem (two-stage, D&C)...");
    let t0 = std::time::Instant::now();
    let result = SymmetricEigen::new()
        .nb(32) // band width: the paper's central tuning knob
        .solve(&a)?;
    let took = t0.elapsed();

    let z = result
        .eigenvectors
        .as_ref()
        .ok_or("solver returned no eigenvectors")?;

    // Quality metrics (values of ~1-100 are excellent; see tseig-matrix::norms).
    let residual = norms::eigen_residual(&a, &result.eigenvalues, z);
    let orth = norms::orthogonality(z);
    let eig_err = norms::eigenvalue_distance(&result.eigenvalues, &lambda);

    println!("done in {took:.2?}");
    println!("  eigenvalue error vs prescribed spectrum : {eig_err:.3e}");
    println!("  scaled residual  ||A Z - Z L|| / (||A|| n eps) : {residual:.1}");
    println!("  orthogonality    ||Z'Z - I|| / (n eps)         : {orth:.1}");
    println!("phase breakdown:");
    println!(
        "  stage 1 (dense->band)     : {:.2?}",
        result.timings.stage1
    );
    println!(
        "  stage 2 (bulge chasing)   : {:.2?}",
        result.timings.stage2
    );
    println!(
        "  tridiagonal eigensolver   : {:.2?}",
        result.timings.tridiag_solve
    );
    println!(
        "  back-transform (Q2, Q1)   : {:.2?}",
        result.timings.backtransform
    );

    if !(residual < 1000.0 && orth < 1000.0 && eig_err < 1e-10) {
        return Err("result failed its quality checks".into());
    }
    println!("all checks passed");
    Ok(())
}
