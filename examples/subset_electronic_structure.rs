//! Electronic-structure-flavoured workload: lowest eigenpairs of a
//! tight-binding Hamiltonian.
//!
//! The paper's distributed cousin (ELPA) was built for exactly this use
//! case: electronic-structure codes need the lowest `f·n` eigenpairs of a
//! dense symmetric (Fock/Hamiltonian) matrix at every SCF iteration —
//! the paper's Figure 4d scenario (`f = 20 %`). This example builds a 2-D
//! tight-binding Hamiltonian with disorder and computes the occupied
//! subspace only, comparing the cost against a full diagonalization.
//!
//! ```text
//! cargo run --release -p tseig-core --example subset_electronic_structure [lattice]
//! ```

use tseig_core::SymmetricEigen;
use tseig_matrix::{norms, Matrix};
use tseig_tridiag::Method;

/// 2-D tight-binding Hamiltonian on an `l x l` lattice: hopping `-t`
/// between neighbours, random on-site disorder in `[-w/2, w/2]`.
fn hamiltonian(l: usize, hop: f64, disorder: f64, seed: u64) -> Matrix {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let n = l * l;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut h = Matrix::zeros(n, n);
    let idx = |x: usize, y: usize| x + y * l;
    for y in 0..l {
        for x in 0..l {
            let i = idx(x, y);
            h[(i, i)] = rng.gen_range(-disorder / 2.0..disorder / 2.0);
            if x + 1 < l {
                let j = idx(x + 1, y);
                h[(i, j)] = -hop;
                h[(j, i)] = -hop;
            }
            if y + 1 < l {
                let j = idx(x, y + 1);
                h[(i, j)] = -hop;
                h[(j, i)] = -hop;
            }
        }
    }
    h
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let l: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let n = l * l;
    let f = 0.2;
    let h = hamiltonian(l, 1.0, 0.5, 7);

    println!("tight-binding Hamiltonian: {l}x{l} lattice, n = {n}");
    println!(
        "computing the lowest {:.0}% of the spectrum (occupied states)...",
        f * 100.0
    );

    // Subset solve: bisection + inverse iteration (the MRRR role).
    let t0 = std::time::Instant::now();
    let occupied = SymmetricEigen::new()
        .nb(24)
        .method(Method::BisectionInverse)
        .fraction(f)
        .solve(&h)?;
    let t_subset = t0.elapsed();
    let k = occupied.eigenvalues.len();

    // Full solve for comparison (D&C).
    let t1 = std::time::Instant::now();
    let full = SymmetricEigen::new().nb(24).solve(&h)?;
    let t_full = t1.elapsed();

    let z = occupied
        .eigenvectors
        .as_ref()
        .ok_or("solver returned no eigenvectors")?;
    let residual = norms::eigen_residual(&h, &occupied.eigenvalues, z);
    let agree = norms::eigenvalue_distance(&occupied.eigenvalues, &full.eigenvalues[..k]);

    // Physics sanity: total energy of the occupied subspace.
    let e_occ: f64 = occupied.eigenvalues.iter().sum();

    println!("occupied states        : {k}");
    println!("ground-state energy sum: {e_occ:.6}");
    println!("residual (scaled)      : {residual:.1}");
    println!("subset vs full agreement: {agree:.3e}");
    println!("subset solve : {t_subset:.2?}");
    println!(
        "full solve   : {t_full:.2?}  (speedup from f: {:.2}x)",
        t_full.as_secs_f64() / t_subset.as_secs_f64()
    );

    if !(residual < 1000.0 && agree < 1e-9) {
        return Err("result failed its quality checks".into());
    }
    if !occupied.eigenvalues.windows(2).all(|w| w[0] <= w[1]) {
        return Err("eigenvalues not ascending".into());
    }
    println!("all checks passed");
    Ok(())
}
