//! SVD application: principal component analysis / low-rank
//! approximation.
//!
//! Builds a data matrix with a planted low-rank structure plus noise,
//! runs the `tseig-svd` pipeline, and verifies (a) the spectral gap
//! separates signal from noise and (b) the rank-k truncation achieves
//! the Eckart–Young optimal error (the (k+1)-th singular value).
//!
//! ```text
//! cargo run --release -p tseig-svd --example low_rank_pca [m] [n]
//! ```

use tseig_matrix::Matrix;
use tseig_svd::{drivers::svd_residual, gesvd};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let n: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let rank = 5usize;
    let noise = 0.01;

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(2024);

    // Planted signal: sum of `rank` outer products with decaying weights.
    let x = Matrix::from_fn(m, rank, |_, _| rng.gen_range(-1.0..1.0));
    let y = Matrix::from_fn(n, rank, |_, _| rng.gen_range(-1.0..1.0));
    let mut a = Matrix::zeros(m, n);
    for r in 0..rank {
        let w = 10.0 / (1 << r) as f64; // 10, 5, 2.5, ...
        for j in 0..n {
            let yj = y[(j, r)] * w;
            let col = a.col_mut(j);
            for i in 0..m {
                col[i] += x[(i, r)] * yj;
            }
        }
    }
    for v in a.as_mut_slice() {
        *v += rng.gen_range(-noise..noise);
    }

    println!("PCA of a {m} x {n} data matrix (planted rank {rank} + noise {noise})");
    let t0 = std::time::Instant::now();
    let svd = gesvd(&a)?;
    println!(
        "SVD in {:.2?}, residual {:.1}",
        t0.elapsed(),
        svd_residual(&a, &svd)
    );

    println!("top {} singular values:", rank + 3);
    for i in 0..(rank + 3).min(n) {
        println!("  s[{i}] = {:.4}", svd.s[i]);
    }
    // Spectral gap: signal sv >> noise sv.
    let gap = svd.s[rank - 1] / svd.s[rank];
    println!("signal/noise spectral gap: {gap:.1}x");
    if gap <= 10.0 {
        return Err("planted rank not recovered".into());
    }

    // Eckart-Young: ||A - A_k||_2 == s[k]; verify via the residual of the
    // truncated reconstruction in Frobenius norm (upper-bounds spectral).
    let k = rank;
    let mut us = svd.u.sub_matrix(0, 0, m, k);
    for j in 0..k {
        let col = us.col_mut(j);
        for v in col.iter_mut() {
            *v *= svd.s[j];
        }
    }
    let vk = svd.v.sub_matrix(0, 0, n, k);
    let ak = us.multiply(&vk.transpose())?;
    let mut err2 = 0.0f64;
    for (p, q) in ak.as_slice().iter().zip(a.as_slice()) {
        err2 += (p - q) * (p - q);
    }
    let tail2: f64 = svd.s[k..].iter().map(|s| s * s).sum();
    println!(
        "rank-{k} truncation error (Frobenius): {:.4e}  (sum of discarded sv^2: {:.4e})",
        err2.sqrt(),
        tail2.sqrt()
    );
    if (err2 - tail2).abs() > 1e-6 * (1.0 + tail2) {
        return Err("Eckart-Young violated".into());
    }
    println!("all checks passed");
    Ok(())
}
