//! Hermitian eigenproblem: 2-D tight-binding lattice in a magnetic
//! field (Hofstadter model).
//!
//! A perpendicular magnetic field turns the hopping amplitudes complex
//! (Peierls substitution), making the Hamiltonian genuinely Hermitian
//! rather than real symmetric — the "(or hermitian)" case of the
//! paper's title. The spectrum (Hofstadter butterfly wing at flux
//! `p/q = 1/3`) splits into `q` magnetic sub-bands, which the example
//! verifies by locating the spectral gaps.
//!
//! ```text
//! cargo run --release -p tseig-hermitian --example hermitian_magnetic [l]
//! ```

use tseig_hermitian::{validate, HermitianEigen};
use tseig_matrix::{c64, CMatrix, C64};

/// `l x l` lattice with flux `alpha` quanta per plaquette (Landau gauge:
/// the `x`-hop from column `x` picks up the phase `2 pi alpha x` on the
/// `y`-bond).
fn hofstadter(l: usize, alpha: f64) -> CMatrix {
    let n = l * l;
    let idx = |x: usize, y: usize| x + y * l;
    let mut h = CMatrix::zeros(n, n);
    for y in 0..l {
        for x in 0..l {
            let i = idx(x, y);
            if x + 1 < l {
                let j = idx(x + 1, y);
                h[(i, j)] = c64(-1.0, 0.0);
                h[(j, i)] = c64(-1.0, 0.0);
            }
            if y + 1 < l {
                // Complex hopping: phase depends on the column.
                let phase = 2.0 * std::f64::consts::PI * alpha * x as f64;
                let t: C64 = c64(-phase.cos(), -phase.sin());
                let j = idx(x, y + 1);
                h[(i, j)] = t;
                h[(j, i)] = t.conj();
            }
        }
    }
    h
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let l: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);
    let n = l * l;
    let alpha = 1.0 / 3.0; // flux p/q = 1/3 -> 3 magnetic sub-bands

    println!("Hofstadter Hamiltonian: {l}x{l} lattice, n = {n}, flux 1/3");
    let h = hofstadter(l, alpha);

    let t0 = std::time::Instant::now();
    let r = HermitianEigen::new().nb(16).solve(&h)?;
    let took = t0.elapsed();

    let z = r
        .eigenvectors
        .as_ref()
        .ok_or("solver returned no eigenvectors")?;
    let res = validate::hermitian_residual(&h, &r.eigenvalues, z);
    let uni = validate::unitary_error(z);
    println!("done in {took:.2?}");
    println!("  scaled residual ||H Z - Z L|| : {res:.1}");
    println!("  unitarity ||Z^H Z - I||       : {uni:.1}");

    // Locate the two largest interior gaps — at flux 1/3 the spectrum
    // splits into 3 sub-bands (up to finite-size smearing).
    let mut gaps: Vec<(f64, usize)> = r
        .eigenvalues
        .windows(2)
        .enumerate()
        .map(|(i, w)| (w[1] - w[0], i))
        .collect();
    gaps.sort_by(|a, b| b.0.total_cmp(&a.0));
    let interior: Vec<&(f64, usize)> = gaps
        .iter()
        .filter(|(_, i)| *i > n / 10 && *i < n - n / 10)
        .take(2)
        .collect();
    println!("largest interior spectral gaps (sub-band splitting):");
    for (g, i) in &interior {
        println!(
            "  gap {g:.4} after eigenvalue {i} (lambda = {:.4})",
            r.eigenvalues[*i]
        );
    }

    if !(res < 2000.0 && uni < 2000.0) {
        return Err("result failed its quality checks".into());
    }
    // The band gaps of the flux-1/3 butterfly are O(1); finite-size
    // in-band spacings are O(1/n).
    if !interior.iter().all(|(g, _)| *g > 0.05) {
        return Err("sub-band gaps not found".into());
    }
    println!("all checks passed");
    Ok(())
}
