//! Generalized eigenproblem: vibration modes with a non-trivial mass
//! matrix, `K x = lambda M x`.
//!
//! A chain of springs with *unequal masses* leads to the generalized
//! symmetric-definite pencil `(K, M)`: `K` is the stiffness matrix
//! (tridiagonal `2,-1` pattern), `M` is a diagonal-dominant mass matrix.
//! This is the problem class the two-stage reduction was first invented
//! for (Grimes & Simon 1988, paper §2).
//!
//! ```text
//! cargo run --release -p tseig-core --example generalized_modes [n]
//! ```

use tseig_core::generalized::{b_orthogonality, generalized_residual, solve_generalized};
use tseig_core::SymmetricEigen;
use tseig_matrix::Matrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);

    // Stiffness: standard spring chain (all stiffness 1).
    let mut k = Matrix::zeros(n, n);
    for i in 0..n {
        k[(i, i)] = 2.0;
        if i + 1 < n {
            k[(i, i + 1)] = -1.0;
            k[(i + 1, i)] = -1.0;
        }
    }
    // Masses: a smooth gradient from 1 to 3 plus consistent-mass
    // coupling (off-diagonal 1/6 factors, FEM-style) — SPD but far from
    // the identity.
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        let mi = 1.0 + 2.0 * i as f64 / (n as f64 - 1.0);
        m[(i, i)] = 2.0 / 3.0 * mi;
        if i + 1 < n {
            let mij = (1.0 + 2.0 * (i as f64 + 0.5) / (n as f64 - 1.0)) / 6.0;
            m[(i, i + 1)] = mij;
            m[(i + 1, i)] = mij;
        }
    }

    println!("generalized pencil (K, M), n = {n}: K x = lambda M x");
    let t0 = std::time::Instant::now();
    let r = solve_generalized(&k, &m, &SymmetricEigen::new().nb(32))?;
    let took = t0.elapsed();

    let x = r
        .eigenvectors
        .as_ref()
        .ok_or("solver returned no eigenvectors")?;
    let res = generalized_residual(&k, &m, &r.eigenvalues, x);
    let borth = b_orthogonality(&m, x);

    println!("done in {took:.2?}");
    println!("  scaled residual ||K x - l M x||    : {res:.1}");
    println!("  M-orthogonality ||X' M X - I||     : {borth:.1}");
    println!("lowest five frequencies (sqrt(lambda)):");
    for i in 0..5.min(n) {
        println!(
            "  mode {i}: lambda = {:.6}, freq = {:.6}",
            r.eigenvalues[i],
            r.eigenvalues[i].sqrt()
        );
    }
    // All eigenvalues of an SPD pencil with SPD K are positive.
    if !r.eigenvalues.iter().all(|&l| l > 0.0) {
        return Err("SPD pencil produced a non-positive eigenvalue".into());
    }
    if !(res < 2000.0 && borth < 2000.0) {
        return Err("result failed its quality checks".into());
    }
    println!("all checks passed");
    Ok(())
}
