//! Std-backed shim for the subset of rayon used by this workspace.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements — on `std::thread::scope` — exactly the surface the
//! eigensolver needs: `join`, `current_num_threads`, and eager parallel
//! iterators over ranges, vectors, slice windows and mutable slice
//! chunks. Work is distributed dynamically: worker threads pull items
//! off a shared queue, so unequal per-item cost (trapezoidal column
//! chunks, ragged tails) still balances.
//!
//! A global thread budget (`RAYON_NUM_THREADS` or the machine's
//! available parallelism) bounds the *total* number of live workers
//! across nested calls, so recursive `join` (divide and conquer) cannot
//! fork an unbounded thread tree.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// Number of threads parallel calls may use in total: the
/// `RAYON_NUM_THREADS` environment variable if set and positive,
/// otherwise the machine's available parallelism.
pub fn current_num_threads() -> usize {
    static CACHED: AtomicUsize = AtomicUsize::new(0);
    let cached = CACHED.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    CACHED.store(n, Ordering::Relaxed);
    n
}

/// Live workers across all nested parallel calls (the caller's thread
/// counts as one).
static ACTIVE: AtomicUsize = AtomicUsize::new(1);

/// RAII claim on extra worker threads from the global budget.
struct ThreadClaim(usize);

impl ThreadClaim {
    /// Claim up to `want` extra threads, possibly zero.
    fn take(want: usize) -> ThreadClaim {
        let limit = current_num_threads();
        let mut granted = 0;
        while granted < want {
            let cur = ACTIVE.load(Ordering::Relaxed);
            if cur >= limit {
                break;
            }
            if ACTIVE
                .compare_exchange(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                granted += 1;
            }
        }
        ThreadClaim(granted)
    }
}

impl Drop for ThreadClaim {
    fn drop(&mut self) {
        if self.0 > 0 {
            ACTIVE.fetch_sub(self.0, Ordering::Relaxed);
        }
    }
}

/// Run both closures, potentially in parallel, and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let claim = ThreadClaim::take(1);
    if claim.0 == 0 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        (ra, rb)
    })
}

/// Dynamic parallel map over owned items, preserving order.
fn drive<I, R, F>(items: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let claim = ThreadClaim::take((n - 1).min(current_num_threads().saturating_sub(1)));
    if claim.0 == 0 {
        return items.into_iter().map(f).collect();
    }
    let queue = Mutex::new(items.into_iter().enumerate());
    let results = Mutex::new(Vec::with_capacity(n));
    let worker = || loop {
        let next = queue.lock().unwrap().next();
        let Some((i, item)) = next else { break };
        let r = f(item);
        results.lock().unwrap().push((i, r));
    };
    std::thread::scope(|s| {
        for _ in 0..claim.0 {
            s.spawn(worker);
        }
        worker();
    });
    let mut pairs = results.into_inner().unwrap();
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// An eager parallel iterator: the item list is materialized up front
/// and consumed by `map`/`for_each` with dynamic load balancing.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        drive(self.items, f);
    }

    pub fn map<R, F>(self, f: F) -> MapParIter<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        MapParIter {
            items: self.items,
            f,
        }
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// A mapped parallel iterator; the map runs when it is consumed.
pub struct MapParIter<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, F, R> MapParIter<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    pub fn collect<C: FromIterator<R>>(self) -> C {
        drive(self.items, self.f).into_iter().collect()
    }

    pub fn for_each<G>(self, g: G)
    where
        G: Fn(R) + Sync,
    {
        let f = self.f;
        drive(self.items, move |item| g(f(item)));
    }
}

/// Owned-collection / range entry point (`into_par_iter`).
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Shared-slice views (`par_windows`).
pub trait ParallelSlice<T: Sync> {
    fn par_windows(&self, size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_windows(&self, size: usize) -> ParIter<&[T]> {
        ParIter {
            items: self.windows(size).collect(),
        }
    }
}

/// Mutable-slice views (`par_chunks_mut`).
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk: usize) -> ParIter<&mut [T]> {
        assert!(chunk > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks_mut(chunk).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..100usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_mut_disjoint() {
        let mut v = vec![0u64; 103];
        v.par_chunks_mut(10).enumerate().for_each(|(p, c)| {
            for x in c {
                *x = p as u64;
            }
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, (i / 10) as u64);
        }
    }

    #[test]
    fn windows_map() {
        let b = [0usize, 3, 7, 10];
        let spans: Vec<usize> = b.par_windows(2).map(|w| w[1] - w[0]).collect();
        assert_eq!(spans, vec![3, 4, 3]);
    }

    #[test]
    fn nested_join_bounded() {
        fn rec(d: usize) -> usize {
            if d == 0 {
                return 1;
            }
            let (a, b) = join(|| rec(d - 1), || rec(d - 1));
            a + b
        }
        assert_eq!(rec(10), 1024);
    }
}
