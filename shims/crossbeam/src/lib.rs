//! Std-backed shim for the subset of crossbeam used by the task
//! runtime: `deque::{Injector, Worker, Stealer, Steal}`,
//! `utils::Backoff`, and `thread::scope`.
//!
//! The deques are mutex-protected `VecDeque`s rather than lock-free
//! Chase–Lev deques; at the runtime's task granularity (a blocked
//! kernel per task) the lock cost is noise, and the semantics —
//! LIFO owner pop, FIFO steal — are identical.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt.
    pub enum Steal<T> {
        Empty,
        Success(T),
        Retry,
    }

    /// A global FIFO injection queue.
    pub struct Injector<T> {
        q: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        pub fn new() -> Self {
            Injector {
                q: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, value: T) {
            self.q.lock().unwrap().push_back(value);
        }

        pub fn steal(&self) -> Steal<T> {
            match self.q.lock().unwrap().pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        /// Move up to half of the queue into `dest`'s local deque, then
        /// pop one item for the caller.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut q = self.q.lock().unwrap();
            let Some(first) = q.pop_front() else {
                return Steal::Empty;
            };
            let batch = q.len() / 2;
            let mut local = dest.q.lock().unwrap();
            for _ in 0..batch {
                match q.pop_front() {
                    Some(v) => local.push_back(v),
                    None => break,
                }
            }
            Steal::Success(first)
        }

        pub fn is_empty(&self) -> bool {
            self.q.lock().unwrap().is_empty()
        }
    }

    /// A worker-owned deque: the owner pushes and pops at the back
    /// (LIFO, cache locality), thieves steal from the front (FIFO).
    pub struct Worker<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        pub fn new_lifo() -> Self {
            Worker {
                q: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        pub fn new_fifo() -> Self {
            // Only the owner-pop end differs, and this shim's Worker
            // always pops LIFO; the runtime only uses `new_lifo`.
            Self::new_lifo()
        }

        pub fn push(&self, value: T) {
            self.q.lock().unwrap().push_back(value);
        }

        pub fn pop(&self) -> Option<T> {
            self.q.lock().unwrap().pop_back()
        }

        pub fn stealer(&self) -> Stealer<T> {
            Stealer { q: self.q.clone() }
        }

        pub fn is_empty(&self) -> bool {
            self.q.lock().unwrap().is_empty()
        }
    }

    /// A handle that steals from the front of some worker's deque.
    pub struct Stealer<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer { q: self.q.clone() }
        }
    }

    impl<T> Stealer<T> {
        pub fn steal(&self) -> Steal<T> {
            match self.q.lock().unwrap().pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }
    }
}

pub mod utils {
    use std::cell::Cell;

    /// Exponential backoff for spin loops: spin a few rounds, then
    /// yield to the OS scheduler.
    pub struct Backoff {
        step: Cell<u32>,
    }

    const SPIN_LIMIT: u32 = 6;

    impl Default for Backoff {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Backoff {
        pub fn new() -> Self {
            Backoff { step: Cell::new(0) }
        }

        pub fn reset(&self) {
            self.step.set(0);
        }

        pub fn spin(&self) {
            for _ in 0..1u32 << self.step.get().min(SPIN_LIMIT) {
                std::hint::spin_loop();
            }
            if self.step.get() <= SPIN_LIMIT {
                self.step.set(self.step.get() + 1);
            }
        }

        pub fn snooze(&self) {
            if self.step.get() <= SPIN_LIMIT {
                self.spin();
            } else {
                std::thread::yield_now();
            }
        }

        pub fn is_completed(&self) -> bool {
            self.step.get() > SPIN_LIMIT
        }
    }
}

pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Scope handle passed to `scope`'s closure and to every spawned
    /// thread's closure (crossbeam passes the scope so children can
    /// spawn siblings).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Structured-concurrency scope over `std::thread::scope`. Returns
    /// `Err` if the closure (or an unjoined child) panicked, matching
    /// crossbeam's contract.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn worker_lifo_stealer_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        match s.steal() {
            Steal::Success(v) => assert_eq!(v, 1),
            _ => panic!("steal failed"),
        }
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn injector_batch_steal() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_lifo();
        match inj.steal_batch_and_pop(&w) {
            Steal::Success(v) => assert_eq!(v, 0),
            _ => panic!("steal failed"),
        }
        assert!(!w.is_empty());
    }

    #[test]
    fn scope_runs_children() {
        let hits = AtomicUsize::new(0);
        let r = super::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
            42
        });
        assert_eq!(r.unwrap(), 42);
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn scope_propagates_child_panic_as_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("child died"));
            // handle dropped unjoined: scope must report the panic
        });
        assert!(r.is_err());
    }
}
