//! Micro-benchmark harness shim for the subset of criterion used by
//! the bench crate: `criterion_group!` / `criterion_main!`,
//! `Criterion::benchmark_group`, per-group `sample_size` /
//! `throughput`, `bench_function(BenchmarkId, |b| b.iter(..))`.
//!
//! Timing model: one warm-up call estimates the per-iteration cost,
//! then the sample plan is sized so a benchmark takes on the order of a
//! second; each sample's per-iteration time is recorded and the
//! median / min / mean are reported. Results are also appended as JSON
//! to `target/criterion-shim/<group>.json` so benchmark snapshots can
//! be committed or diffed.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Throughput annotation: with `Elements(flops)` the report converts
/// median time to elements/second (GFLOP/s when elements are flops).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A `function/parameter` benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Top-level harness handle; holds the CLI filter.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Build from `cargo bench` CLI arguments: flags are ignored, the
    /// first free argument is a substring filter on benchmark ids.
    pub fn from_args() -> Self {
        let mut filter = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--save-baseline" || a == "--baseline" || a == "--load-baseline" {
                let _ = args.next();
            } else if !a.starts_with('-') && filter.is_none() {
                filter = Some(a);
            }
        }
        Criterion { filter }
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            filter: self.filter.clone(),
            results: Vec::new(),
            _marker_lifetime: std::marker::PhantomData,
        }
    }

    pub fn final_summary(&mut self) {}
}

struct BenchRecord {
    id: String,
    median_s: f64,
    min_s: f64,
    mean_s: f64,
    samples: usize,
    throughput: Option<Throughput>,
}

/// A named group of benchmarks sharing sample-count and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    filter: Option<String>,
    results: Vec<BenchRecord>,
    // Tie the group to the Criterion borrow like real criterion does.
    _marker_lifetime: std::marker::PhantomData<&'a ()>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().id;
        if let Some(flt) = &self.filter {
            let full = format!("{}/{}", self.name, id);
            if !full.contains(flt.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        let mut times = b.samples;
        if times.is_empty() {
            return self;
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = times[times.len() / 2];
        let min = times[0];
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(e)) | Some(Throughput::Bytes(e)) => {
                format!("  {:>8.3} Gelem/s", e as f64 / median / 1e9)
            }
            None => String::new(),
        };
        println!(
            "{:<40} median {:>10} min {:>10} mean {:>10}{rate}",
            format!("{}/{}", self.name, id),
            fmt_time(median),
            fmt_time(min),
            fmt_time(mean),
        );
        self.results.push(BenchRecord {
            id,
            median_s: median,
            min_s: min,
            mean_s: mean,
            samples: times.len(),
            throughput: self.throughput,
        });
        self
    }

    /// Print nothing further, but persist the group's records as JSON
    /// under `target/criterion-shim/`.
    pub fn finish(&mut self) {
        if self.results.is_empty() {
            return;
        }
        let dir = std::path::Path::new("target").join("criterion-shim");
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let mut json = String::from("{\n");
        json.push_str(&format!(
            "  \"group\": \"{}\",\n  \"benches\": [\n",
            self.name
        ));
        for (i, r) in self.results.iter().enumerate() {
            let tp = match r.throughput {
                Some(Throughput::Elements(e)) => format!(
                    ", \"elements\": {}, \"elements_per_s\": {:.6e}",
                    e,
                    e as f64 / r.median_s
                ),
                Some(Throughput::Bytes(b)) => format!(
                    ", \"bytes\": {}, \"bytes_per_s\": {:.6e}",
                    b,
                    b as f64 / r.median_s
                ),
                None => String::new(),
            };
            json.push_str(&format!(
                "    {{\"id\": \"{}\", \"median_s\": {:.6e}, \"min_s\": {:.6e}, \"mean_s\": {:.6e}, \"samples\": {}{}}}{}\n",
                r.id,
                r.median_s,
                r.min_s,
                r.mean_s,
                r.samples,
                tp,
                if i + 1 < self.results.len() { "," } else { "" },
            ));
        }
        json.push_str("  ]\n}\n");
        let _ = std::fs::write(dir.join(format!("{}.json", self.name)), json);
    }
}

fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Handed to each benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + cost estimate.
        let t0 = Instant::now();
        black_box(f());
        let est = t0.elapsed().as_secs_f64().max(1e-9);
        // Plan: aim for ~1 s total, bounded by the configured sample
        // count; slow payloads get fewer samples of one iteration each.
        let budget = 1.0f64;
        let samples = if est > budget / 3.0 {
            3
        } else {
            self.sample_size
        };
        let iters = ((budget / samples as f64 / est).floor() as usize).clamp(1, 1_000_000);
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t.elapsed().as_secs_f64() / iters as f64);
        }
    }
}

/// Bundle benchmark functions into a group callable by
/// [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}
