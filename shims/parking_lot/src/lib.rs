//! `std::sync`-backed shim for the subset of parking_lot used by this
//! workspace: a `Mutex` whose `lock()` returns the guard directly.
//! Poisoning is transparently ignored (parking_lot has no poisoning),
//! so a panicking task does not wedge every later lock of the same data.

use std::sync::TryLockError;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutex without lock poisoning, API-compatible with
/// `parking_lot::Mutex` for the operations this workspace performs.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn survives_poisoning() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() = 5;
        assert_eq!(*m.lock(), 5);
    }
}
