//! Deterministic PRNG shim for the subset of rand used by this
//! workspace: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over float and integer ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction the real `rand` ecosystem uses for `SmallRng` — which is
//! more than adequate for test-matrix generation and has a stable,
//! reproducible stream for a given seed.

use std::ops::Range;

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a small seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to draw a uniform sample from itself.
pub trait SampleRange {
    type Output;
    fn sample_from<G: RngCore>(self, rng: &mut G) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<G: RngCore>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        // 53 uniform mantissa bits in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

signed_sample_range!(i64, i32, i16, i8, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn float_range_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(-2.5..1.25);
            assert!((-2.5..1.25).contains(&x));
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn roughly_uniform_mean() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
