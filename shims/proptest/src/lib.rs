//! Deterministic property-testing shim for the subset of proptest used
//! by this workspace: the `proptest!` macro over `name in strategy`
//! arguments, range / tuple / `prop_map` / `collection::vec` / `any`
//! strategies, and the `prop_assert*` macros.
//!
//! Unlike real proptest there is no shrinking: each test runs
//! `ProptestConfig::cases` deterministic cases (seeded from the test's
//! module path, so runs are reproducible), and on failure the offending
//! case's inputs are printed before the panic propagates. That trades
//! minimal counterexamples for a zero-dependency offline build.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::Range;

/// Per-test configuration. Only `cases` is interpreted; the other
/// fields exist so call sites written against real proptest compile.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

pub mod test_runner {
    use super::*;

    /// Deterministic per-case RNG: seeded from an FNV-1a hash of the
    /// test's identifier mixed with the case index.
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        pub fn for_case(test_id: &str, case: u64) -> TestRng {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_id.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng(StdRng::seed_from_u64(
                h ^ case.wrapping_mul(0x9e3779b97f4a7c15),
            ))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

use test_runner::TestRng;

/// A value generator. `sample` draws one value; `prop_map` post-maps.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Post-mapped strategy, the result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, usize, u64, u32, u16, u8, i64, i32, i16, i8, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Strategy for a type's canonical "any value" generator.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;
    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

pub mod prop {
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::Range;

        /// `Vec` strategy: a length drawn from `sizes`, then that many
        /// elements drawn from `element`.
        pub struct VecStrategy<S> {
            element: S,
            sizes: Range<usize>,
        }

        pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, sizes }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.sizes.clone());
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Run each contained `fn name(args in strategies) { body }` as a
/// multi-case property test.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases as u64 {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)*),
                    $(&$arg),*
                );
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| { $body })
                );
                if let Err(e) = __outcome {
                    eprintln!(
                        "proptest {}: case {} failed with inputs: {}",
                        stringify!($name), case, __inputs
                    );
                    ::std::panic::resume_unwind(e);
                }
            }
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

/// `assert!` that reports through the proptest case machinery.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` that reports through the proptest case machinery.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` that reports through the proptest case machinery.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 50, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(n in 3usize..17, x in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in prop::collection::vec((0u64..5, any::<bool>()), 1..9),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            for (x, _) in &v {
                prop_assert!(*x < 5);
            }
        }

        #[test]
        fn prop_map_applies(d in (1usize..10).prop_map(|x| x * 3)) {
            prop_assert_eq!(d % 3, 0);
            prop_assert!((3..30).contains(&d));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::test_runner::TestRng;
        use rand::RngCore;
        let mut a = TestRng::for_case("x::y", 7);
        let mut b = TestRng::for_case("x::y", 7);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x::y", 8);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
