//! Robustness-layer integration tests: input screening, trivial orders,
//! extreme-norm scaling, degenerate spectra, and post-solve verification
//! (the non-chaos half of the numerical safety net; fault injection
//! lives in `tests/chaos.rs` behind the `chaos` feature).

use proptest::prelude::*;
use tseig_core::{SymmetricEigen, VerifyLevel};
use tseig_matrix::{gen, norms, Error, Matrix};
use tseig_tridiag::{EigenRange, Method};

fn residual_ok(a: &Matrix, vals: &[f64], z: &Matrix, tol: f64) {
    let res = norms::eigen_residual(a, vals, z);
    let orth = norms::orthogonality(z);
    assert!(res < tol, "residual {res}");
    assert!(orth < tol, "orthogonality {orth}");
}

#[test]
fn screening_reports_nan_location() {
    let mut a = gen::random_symmetric(8, 1);
    a[(5, 2)] = f64::NAN;
    match SymmetricEigen::new().solve(&a) {
        Err(Error::InvalidData {
            row: 5,
            col: 2,
            what,
        }) => {
            assert!(what.contains("NaN"), "{what}");
        }
        other => panic!("expected InvalidData, got {other:?}"),
    }
}

#[test]
fn screening_reports_infinite_entry() {
    let mut a = gen::random_symmetric(8, 2);
    a[(0, 7)] = f64::NEG_INFINITY;
    match SymmetricEigen::new().solve(&a) {
        Err(Error::InvalidData { row: 0, col: 7, .. }) => {}
        other => panic!("expected InvalidData, got {other:?}"),
    }
}

#[test]
fn screening_reports_asymmetry() {
    let mut a = gen::random_symmetric(10, 3);
    a[(2, 6)] += 1.0; // upper entry only: gross asymmetry
    match SymmetricEigen::new().solve(&a) {
        Err(Error::InvalidData {
            row: 2,
            col: 6,
            what,
        }) => {
            assert!(what.contains("asymmetry"), "{what}");
        }
        other => panic!("expected InvalidData, got {other:?}"),
    }
    // Rounding-level asymmetry (similarity-transform assembly) passes.
    let a = gen::symmetric_with_spectrum(&gen::linspace(-1.0, 1.0, 30), 4);
    SymmetricEigen::new().nb(6).solve(&a).unwrap();
}

#[test]
fn order_zero() {
    let a = Matrix::zeros(0, 0);
    let r = SymmetricEigen::new().solve(&a).unwrap();
    assert!(r.eigenvalues.is_empty());
    let z = r.eigenvectors.as_ref().unwrap();
    assert_eq!((z.rows(), z.cols()), (0, 0));
    assert!(r.diagnostics.is_clean());
    // The fraction knob must not panic on n == 0 either.
    let r = SymmetricEigen::new().fraction(0.5).solve(&a).unwrap();
    assert!(r.eigenvalues.is_empty());
}

#[test]
fn order_one_ranges() {
    let a = Matrix::from_fn(1, 1, |_, _| 2.5);
    let r = SymmetricEigen::new().solve(&a).unwrap();
    assert_eq!(r.eigenvalues, vec![2.5]);
    let z = r.eigenvectors.as_ref().unwrap();
    assert_eq!((z.rows(), z.cols()), (1, 1));
    assert_eq!(z[(0, 0)], 1.0);

    // Value range: half-open (vl, vu].
    let inc = SymmetricEigen::new()
        .range(EigenRange::Value(0.0, 3.0))
        .solve(&a)
        .unwrap();
    assert_eq!(inc.eigenvalues, vec![2.5]);
    let exc = SymmetricEigen::new()
        .range(EigenRange::Value(2.5, 3.0))
        .solve(&a)
        .unwrap();
    assert!(exc.eigenvalues.is_empty());
    assert_eq!(exc.eigenvectors.as_ref().unwrap().cols(), 0);

    // Index range and fraction.
    let idx = SymmetricEigen::new()
        .range(EigenRange::Index(0, 1))
        .solve(&a)
        .unwrap();
    assert_eq!(idx.eigenvalues, vec![2.5]);
    let fr = SymmetricEigen::new().fraction(0.2).solve(&a).unwrap();
    assert_eq!(fr.eigenvalues, vec![2.5]);
}

#[test]
fn zero_matrix_with_mixed_signed_zeros() {
    let n = 12;
    let a = Matrix::from_fn(n, n, |i, j| if (i + j) % 2 == 0 { 0.0 } else { -0.0 });
    let r = SymmetricEigen::new().nb(4).solve(&a).unwrap();
    assert!(r.eigenvalues.iter().all(|&v| v == 0.0));
    assert!(r.diagnostics.is_clean(), "zero matrix must not be scaled");
    residual_ok(&a, &r.eigenvalues, r.eigenvectors.as_ref().unwrap(), 500.0);
}

#[test]
fn constant_matrix_rank_one() {
    // The all-ones matrix has eigenvalues {n, 0, ..., 0}.
    let n = 20;
    let a = Matrix::from_fn(n, n, |_, _| 1.0);
    let r = SymmetricEigen::new().nb(4).solve(&a).unwrap();
    assert!((r.eigenvalues[n - 1] - n as f64).abs() < 1e-10 * n as f64);
    for &v in &r.eigenvalues[..n - 1] {
        assert!(v.abs() < 1e-10 * n as f64, "{v}");
    }
    residual_ok(&a, &r.eigenvalues, r.eigenvectors.as_ref().unwrap(), 500.0);
}

#[test]
fn rank_deficient_spectrum() {
    // Half the spectrum exactly zero: heavy D&C deflation plus repeated
    // eigenvalues for inverse iteration to keep orthogonal.
    let n = 36;
    let mut lambda = vec![0.0; n / 2];
    lambda.extend(gen::linspace(1.0, 4.0, n - n / 2));
    let a = gen::symmetric_with_spectrum(&lambda, 5);
    for m in [Method::DivideAndConquer, Method::Qr] {
        let r = SymmetricEigen::new().nb(6).method(m).solve(&a).unwrap();
        assert!(
            norms::eigenvalue_distance(&r.eigenvalues, &lambda) < 1e-10,
            "{m:?}"
        );
        residual_ok(&a, &r.eigenvalues, r.eigenvectors.as_ref().unwrap(), 500.0);
    }
}

/// Entrywise-scaled copy: `scale * a`, the exact oracle pairing for the
/// norm-scaling tests.
fn scaled_copy(a: &Matrix, scale: f64) -> Matrix {
    Matrix::from_fn(a.rows(), a.cols(), |i, j| a[(i, j)] * scale)
}

#[test]
fn huge_norm_solves_like_its_unit_rescaling() {
    let n = 40;
    let lambda = gen::linspace(-1.0, 1.0, n);
    let a_unit = gen::symmetric_with_spectrum(&lambda, 6);
    let a_big = scaled_copy(&a_unit, 1e300);

    let r = SymmetricEigen::new().nb(8).solve(&a_big).unwrap();
    assert!(
        r.diagnostics.scaled_by.is_some(),
        "1e300-norm input must be scaled"
    );
    // Direct residual against the huge matrix...
    residual_ok(
        &a_big,
        &r.eigenvalues,
        r.eigenvectors.as_ref().unwrap(),
        500.0,
    );
    // ...and the rescaled eigenpairs must solve the unit-norm oracle to
    // the same bound (same vectors, eigenvalues divided by the scale).
    let rescaled: Vec<f64> = r.eigenvalues.iter().map(|v| v / 1e300).collect();
    residual_ok(&a_unit, &rescaled, r.eigenvectors.as_ref().unwrap(), 500.0);
    assert!(norms::eigenvalue_distance(&rescaled, &lambda) < 1e-10);
}

#[test]
fn tiny_norm_solves_like_its_unit_rescaling() {
    let n = 40;
    let lambda = gen::linspace(-1.0, 1.0, n);
    let a_unit = gen::symmetric_with_spectrum(&lambda, 7);
    let a_tiny = scaled_copy(&a_unit, 1e-290);

    let r = SymmetricEigen::new().nb(8).solve(&a_tiny).unwrap();
    assert!(
        r.diagnostics.scaled_by.is_some(),
        "1e-290-norm input must be scaled"
    );
    let rescaled: Vec<f64> = r.eigenvalues.iter().map(|v| v * 1e290).collect();
    residual_ok(&a_unit, &rescaled, r.eigenvectors.as_ref().unwrap(), 500.0);
    assert!(norms::eigenvalue_distance(&rescaled, &lambda) < 1e-10);
}

#[test]
fn verify_full_passes_and_reports() {
    let a = gen::symmetric_with_spectrum(&gen::linspace(-2.0, 2.0, 32), 8);
    let r = SymmetricEigen::new()
        .nb(6)
        .verify(VerifyLevel::Full)
        .solve(&a)
        .unwrap();
    let v = r.diagnostics.verify.expect("verify report");
    assert!(v.residual < 1e3 && v.orthogonality < 1e3);
    // Residual-only level leaves orthogonality at 0.
    let r = SymmetricEigen::new()
        .nb(6)
        .verify(VerifyLevel::Residual)
        .solve(&a)
        .unwrap();
    let v = r.diagnostics.verify.expect("verify report");
    assert!(v.residual < 1e3);
    assert_eq!(v.orthogonality, 0.0);
}

#[test]
fn verify_values_only_checks_ordering() {
    let a = gen::random_symmetric(24, 9);
    let r = SymmetricEigen::new()
        .nb(6)
        .vectors(false)
        .verify(VerifyLevel::Full)
        .solve(&a)
        .unwrap();
    assert!(r.eigenvectors.is_none());
    assert!(r.diagnostics.verify.is_some());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn extreme_scales_match_unit_oracle(
        n in 8usize..24,
        seed in 0u64..500,
        scale_idx in 0usize..4,
    ) {
        let scale = [1e-290, 1e-250, 1e250, 1e300][scale_idx];
        let lambda = gen::linspace(-1.0, 1.0, n);
        let a_unit = gen::symmetric_with_spectrum(&lambda, seed);
        let a_scaled = scaled_copy(&a_unit, scale);
        let r = SymmetricEigen::new().nb(4).solve(&a_scaled).unwrap();
        prop_assert!(r.diagnostics.scaled_by.is_some());
        let rescaled: Vec<f64> = r.eigenvalues.iter().map(|v| v / scale).collect();
        let z = r.eigenvectors.as_ref().unwrap();
        prop_assert!(norms::eigen_residual(&a_unit, &rescaled, z) < 500.0);
        prop_assert!(norms::orthogonality(z) < 500.0);
        prop_assert!(norms::eigenvalue_distance(&rescaled, &lambda) < 1e-9);
    }
}
