//! Cross-crate integration tests: the full two-stage pipeline validated
//! against the independent Jacobi oracle, against closed-form spectra,
//! and across configuration space.

use tseig_core::{Scheduler, SymmetricEigen};
use tseig_kernels::reference::jacobi_eigen;
use tseig_matrix::{gen, norms, Matrix};
use tseig_tridiag::{EigenRange, Method};

const TOL: f64 = 500.0;

fn assert_good(a: &Matrix, vals: &[f64], z: &Matrix, tag: &str) {
    let res = norms::eigen_residual(a, vals, z);
    let orth = norms::orthogonality(z);
    assert!(res < TOL, "{tag}: residual {res}");
    assert!(orth < TOL, "{tag}: orthogonality {orth}");
}

#[test]
fn two_stage_matches_jacobi_oracle() {
    let n = 90;
    let a = gen::random_symmetric(n, 1001);
    let oracle = jacobi_eigen(&a, false).unwrap();
    let r = SymmetricEigen::new().nb(12).solve(&a).unwrap();
    assert!(
        norms::eigenvalue_distance(&r.eigenvalues, &oracle.eigenvalues) < 1e-10,
        "two-stage vs Jacobi eigenvalues"
    );
    assert_good(
        &a,
        &r.eigenvalues,
        r.eigenvectors.as_ref().unwrap(),
        "two-stage",
    );
}

#[test]
fn closed_form_laplacian_2d() {
    // 2-D Laplacian eigenvalues are sums of 1-D ones.
    let (nx, ny) = (8, 7);
    let a = gen::laplacian_2d(nx, ny);
    let mut exact: Vec<f64> = gen::laplacian_1d_eigenvalues(nx)
        .iter()
        .flat_map(|x| {
            gen::laplacian_1d_eigenvalues(ny)
                .iter()
                .map(|y| x + y)
                .collect::<Vec<_>>()
        })
        .collect();
    exact.sort_by(|p, q| p.partial_cmp(q).unwrap());
    let r = SymmetricEigen::new().nb(8).solve(&a).unwrap();
    assert!(norms::eigenvalue_distance(&r.eigenvalues, &exact) < 1e-11);
    assert_good(
        &a,
        &r.eigenvalues,
        r.eigenvectors.as_ref().unwrap(),
        "laplacian2d",
    );
}

#[test]
fn clustered_spectrum_stress() {
    // Tight cluster stresses D&C deflation and the back-transform.
    let n = 80;
    let lambda = gen::clustered_spectrum(n, 15, -1.0, 1.0, 1e-9);
    let mut sorted = lambda.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let a = gen::symmetric_with_spectrum(&lambda, 1002);
    let r = SymmetricEigen::new().nb(10).solve(&a).unwrap();
    assert!(norms::eigenvalue_distance(&r.eigenvalues, &sorted) < 1e-9);
    assert_good(
        &a,
        &r.eigenvalues,
        r.eigenvectors.as_ref().unwrap(),
        "clustered",
    );
}

#[test]
fn config_matrix_methods_times_schedulers() {
    let n = 56;
    let a = gen::random_symmetric(n, 1003);
    let oracle = jacobi_eigen(&a, false).unwrap().eigenvalues;
    for method in [
        Method::Qr,
        Method::DivideAndConquer,
        Method::BisectionInverse,
    ] {
        for sched in [
            Scheduler::Serial,
            Scheduler::Static(2),
            Scheduler::Dynamic(3),
        ] {
            let r = SymmetricEigen::new()
                .nb(7)
                .method(method)
                .scheduler(sched)
                .solve(&a)
                .unwrap();
            assert!(
                norms::eigenvalue_distance(&r.eigenvalues, &oracle) < 1e-9,
                "{method:?}/{sched:?}"
            );
            assert_good(
                &a,
                &r.eigenvalues,
                r.eigenvectors.as_ref().unwrap(),
                &format!("{method:?}/{sched:?}"),
            );
        }
    }
}

#[test]
fn fraction_request_costs_less_backtransform() {
    // Not a wall-clock bench — count flops: f = 0.25 must spend roughly
    // a quarter of the Level-3 back-transform flops of the full solve.
    let n = 120;
    let a = gen::random_symmetric(n, 1004);
    let full = {
        let (_, counts) =
            tseig_kernels::flops::measure(|| SymmetricEigen::new().nb(12).solve(&a).unwrap());
        counts
    };
    let (r, part) = tseig_kernels::flops::measure(|| {
        SymmetricEigen::new()
            .nb(12)
            .method(Method::BisectionInverse)
            .fraction(0.25)
            .solve(&a)
            .unwrap()
    });
    assert_eq!(r.eigenvalues.len(), 30);
    assert!(
        (part.total() as f64) < 0.8 * full.total() as f64,
        "partial {} vs full {}",
        part.total(),
        full.total()
    );
}

#[test]
fn large_pipeline_smoke() {
    // One bigger end-to-end run with realistic nb.
    let n = 300;
    let lambda = gen::linspace(0.0, 100.0, n);
    let a = gen::symmetric_with_spectrum(&lambda, 1005);
    let r = SymmetricEigen::new()
        .nb(32)
        .scheduler(Scheduler::Dynamic(4))
        .solve(&a)
        .unwrap();
    assert!(norms::eigenvalue_distance(&r.eigenvalues, &lambda) < 1e-10);
    assert_good(&a, &r.eigenvalues, r.eigenvectors.as_ref().unwrap(), "n300");
}

#[test]
fn index_range_interior_subset() {
    let n = 64;
    let a = gen::random_symmetric(n, 1006);
    let full = SymmetricEigen::new().nb(8).solve(&a).unwrap();
    let r = SymmetricEigen::new()
        .nb(8)
        .method(Method::BisectionInverse)
        .range(EigenRange::Index(20, 30))
        .solve(&a)
        .unwrap();
    assert_eq!(r.eigenvalues.len(), 10);
    assert!(norms::eigenvalue_distance(&r.eigenvalues, &full.eigenvalues[20..30]) < 1e-10);
    assert_good(
        &a,
        &r.eigenvalues,
        r.eigenvectors.as_ref().unwrap(),
        "interior",
    );
}
