//! Hermitian-driver robustness: screening, trivial orders, norm
//! scaling, and verified solves — the complex mirror of
//! `tests/robustness.rs`.

use tseig_hermitian::{validate, HermitianEigen, VerifyLevel};
use tseig_matrix::{c64, CMatrix, Error};
use tseig_tridiag::EigenRange;

#[test]
fn screening_reports_nan_and_non_hermitian() {
    let mut a = validate::rand_hermitian(8, 1);
    a[(3, 4)] = c64(f64::NAN, 0.0);
    match HermitianEigen::new().solve(&a) {
        Err(Error::InvalidData {
            row: 3,
            col: 4,
            what,
        }) => {
            assert!(what.contains("NaN"), "{what}");
        }
        other => panic!("expected InvalidData, got {other:?}"),
    }

    let mut a = validate::rand_hermitian(8, 2);
    // Break conjugate symmetry in one pair.
    a[(1, 6)] = c64(10.0, 0.0);
    match HermitianEigen::new().solve(&a) {
        Err(Error::InvalidData { row: 1, col: 6, .. }) => {}
        other => panic!("expected InvalidData, got {other:?}"),
    }

    // A non-real diagonal entry is not Hermitian either.
    let mut a = validate::rand_hermitian(8, 3);
    a[(5, 5)] = c64(a[(5, 5)].re, 2.0);
    match HermitianEigen::new().solve(&a) {
        Err(Error::InvalidData { row: 5, col: 5, .. }) => {}
        other => panic!("expected InvalidData, got {other:?}"),
    }
}

#[test]
fn trivial_orders() {
    let r = HermitianEigen::new().solve(&CMatrix::zeros(0, 0)).unwrap();
    assert!(r.eigenvalues.is_empty());
    assert!(r.diagnostics.is_clean());

    let a = CMatrix::from_fn(1, 1, |_, _| c64(-1.5, 0.0));
    let r = HermitianEigen::new().solve(&a).unwrap();
    assert_eq!(r.eigenvalues, vec![-1.5]);
    let z = r.eigenvectors.as_ref().unwrap();
    assert_eq!((z.rows(), z.cols()), (1, 1));
    assert_eq!(z[(0, 0)], c64(1.0, 0.0));

    // Half-open (vl, vu] value range on the 1x1 case.
    let exc = HermitianEigen::new()
        .range(EigenRange::Value(-1.5, 0.0))
        .solve(&a)
        .unwrap();
    assert!(exc.eigenvalues.is_empty());
    let inc = HermitianEigen::new()
        .range(EigenRange::Value(-2.0, 0.0))
        .solve(&a)
        .unwrap();
    assert_eq!(inc.eigenvalues, vec![-1.5]);
}

#[test]
fn huge_norm_matches_unit_rescaling() {
    let n = 32;
    let a_unit = validate::hermitian_with_spectrum(&spectrum(n), 4);
    let a_big = CMatrix::from_fn(n, n, |i, j| a_unit[(i, j)].scale(1e300));

    let r = HermitianEigen::new().nb(8).solve(&a_big).unwrap();
    assert!(r.diagnostics.scaled_by.is_some());
    let z = r.eigenvectors.as_ref().unwrap();
    let rescaled: Vec<f64> = r.eigenvalues.iter().map(|v| v / 1e300).collect();
    assert!(validate::hermitian_residual(&a_unit, &rescaled, z) < 500.0);
    assert!(validate::unitary_error(z) < 500.0);
}

#[test]
fn tiny_norm_matches_unit_rescaling() {
    let n = 32;
    let a_unit = validate::hermitian_with_spectrum(&spectrum(n), 5);
    let a_tiny = CMatrix::from_fn(n, n, |i, j| a_unit[(i, j)].scale(1e-290));

    let r = HermitianEigen::new().nb(8).solve(&a_tiny).unwrap();
    assert!(r.diagnostics.scaled_by.is_some());
    let z = r.eigenvectors.as_ref().unwrap();
    let rescaled: Vec<f64> = r.eigenvalues.iter().map(|v| v * 1e290).collect();
    assert!(validate::hermitian_residual(&a_unit, &rescaled, z) < 500.0);
    assert!(validate::unitary_error(z) < 500.0);
}

#[test]
fn verify_full_passes() {
    let a = validate::hermitian_with_spectrum(&spectrum(24), 6);
    let r = HermitianEigen::new()
        .nb(6)
        .verify(VerifyLevel::Full)
        .solve(&a)
        .unwrap();
    let v = r.diagnostics.verify.expect("verify report");
    assert!(v.residual < 1e3 && v.orthogonality < 1e3);
}

fn spectrum(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| -1.0 + 2.0 * i as f64 / (n - 1) as f64)
        .collect()
}
