//! Property-based tests (proptest) over the whole pipeline and its key
//! invariants: random sizes, bandwidths, spectra and seeds.

use proptest::prelude::*;
use tseig_core::stage1::sy2sb;
use tseig_core::stage2::reduce;
use tseig_core::SymmetricEigen;
use tseig_matrix::{gen, norms, SymBandMatrix};
use tseig_tridiag::sturm;

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Stage 1 preserves the spectrum for any (n, nb).
    #[test]
    fn stage1_preserves_spectrum(n in 6usize..40, nb in 1usize..10, seed in 0u64..1000) {
        let a = gen::random_symmetric(n, seed);
        let bf = sy2sb(&a, nb, 0);
        // Sturm counts at a few probe points must agree between A's
        // tridiagonal (via the oracle) and the band's.
        let want = tseig_kernels::reference::jacobi_eigen(&a, false).unwrap().eigenvalues;
        let bd = bf.band.to_dense();
        let got = tseig_kernels::reference::jacobi_eigen(&bd, false).unwrap().eigenvalues;
        prop_assert!(norms::eigenvalue_distance(&got, &want) < 1e-9);
        // And the band really is banded.
        prop_assert_eq!(bf.band.max_below_subdiagonal(nb), 0.0);
    }

    /// Stage 2 preserves the spectrum and leaves no fill.
    #[test]
    fn stage2_preserves_spectrum(n in 6usize..40, b in 2usize..8, seed in 0u64..1000) {
        let a = gen::random_symmetric(n, seed);
        let mut banded = a.clone();
        for j in 0..n {
            for i in 0..n {
                if i.abs_diff(j) > b {
                    banded[(i, j)] = 0.0;
                }
            }
        }
        let band = SymBandMatrix::from_dense_lower(&banded, b, b);
        let r = reduce(band);
        let want = tseig_kernels::reference::jacobi_eigen(&banded, false).unwrap().eigenvalues;
        let got = sturm::bisect_eigenvalues(&r.tridiagonal, 0, n).unwrap();
        prop_assert!(norms::eigenvalue_distance(&got, &want) < 1e-9);
    }

    /// Full pipeline: residual and orthogonality within bounds for any
    /// configuration.
    #[test]
    fn full_pipeline_quality(n in 4usize..50, nb in 1usize..12, seed in 0u64..1000) {
        let a = gen::random_symmetric(n, seed);
        let r = SymmetricEigen::new().nb(nb).solve(&a).unwrap();
        let z = r.eigenvectors.as_ref().unwrap();
        prop_assert!(norms::eigen_residual(&a, &r.eigenvalues, z) < 1000.0);
        prop_assert!(norms::orthogonality(z) < 1000.0);
        // Eigenvalues ascend.
        prop_assert!(r.eigenvalues.windows(2).all(|w| w[0] <= w[1]));
        // Trace is preserved (similarity invariant).
        let tr_a: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let tr_l: f64 = r.eigenvalues.iter().sum();
        prop_assert!((tr_a - tr_l).abs() < 1e-8 * (1.0 + tr_a.abs()));
    }

    /// Prescribed spectra are recovered exactly (up to scaled eps).
    #[test]
    fn prescribed_spectrum_recovered(n in 4usize..40, seed in 0u64..1000, lo in -5.0f64..0.0, width in 0.1f64..10.0) {
        let lambda = gen::linspace(lo, lo + width, n);
        let a = gen::symmetric_with_spectrum(&lambda, seed);
        let r = SymmetricEigen::new().nb(6).solve(&a).unwrap();
        prop_assert!(norms::eigenvalue_distance(&r.eigenvalues, &lambda) < 1e-9);
    }

    /// Subset solves agree with the matching slice of the full solve.
    #[test]
    fn subset_is_slice_of_full(n in 10usize..40, seed in 0u64..1000, lo_frac in 0.0f64..0.5, len_frac in 0.1f64..0.5) {
        let a = gen::random_symmetric(n, seed);
        let full = SymmetricEigen::new().nb(5).solve(&a).unwrap();
        let lo = (lo_frac * n as f64) as usize;
        let hi = (lo + (len_frac * n as f64) as usize + 1).min(n);
        let r = SymmetricEigen::new()
            .nb(5)
            .method(tseig_tridiag::Method::BisectionInverse)
            .range(tseig_tridiag::EigenRange::Index(lo, hi))
            .solve(&a)
            .unwrap();
        prop_assert!(norms::eigenvalue_distance(&r.eigenvalues, &full.eigenvalues[lo..hi]) < 1e-9);
    }
}
