//! Fault injection through the Hermitian driver (`--features chaos`):
//! a task panic inside the dynamic stage-2 schedule must fall back to
//! the serial schedule and still deliver a correct, degraded result.

use std::sync::Mutex;
use tseig_hermitian::{validate, HermitianEigen, Recovery, Scheduler};
use tseig_matrix::chaos::{self, Plan, Site};
use tseig_matrix::norms;

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn task_panic_falls_back_to_serial_stage2() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    struct ResetOnDrop;
    impl Drop for ResetOnDrop {
        fn drop(&mut self) {
            chaos::reset();
        }
    }
    let _reset = ResetOnDrop;

    let lambda: Vec<f64> = (0..48).map(|i| i as f64 / 10.0).collect();
    let a = validate::hermitian_with_spectrum(&lambda, 21);
    chaos::install(Plan::new().with(Site::TaskPanic, 1));

    let r = HermitianEigen::new()
        .nb(8)
        .scheduler(Scheduler::Dynamic(4))
        .solve(&a)
        .expect("panic must be absorbed by the serial fallback");

    if chaos::reached(Site::TaskPanic) > 0 {
        assert!(r.diagnostics.degraded);
        assert!(
            r.diagnostics
                .recoveries
                .iter()
                .any(|x| matches!(x, Recovery::SchedulerFallback { .. })),
            "{:?}",
            r.diagnostics.recoveries
        );
    }
    let z = r.eigenvectors.as_ref().expect("vectors");
    assert!(validate::hermitian_residual(&a, &r.eigenvalues, z) < 500.0);
    assert!(validate::unitary_error(z) < 500.0);
    assert!(norms::eigenvalue_distance(&r.eigenvalues, &lambda) < 1e-9);
}
