//! One-stage vs two-stage equivalence: both pipelines must compute the
//! same spectra and equally good eigenvectors — the paper's claim is
//! about *speed*, never accuracy.

use tseig_core::SymmetricEigen;
use tseig_matrix::{gen, norms};
use tseig_onestage::{syev, OneStageOptions};
use tseig_tridiag::{EigenRange, Method};

#[test]
fn same_spectrum_random() {
    for seed in [1u64, 2, 3] {
        let n = 70;
        let a = gen::random_symmetric(n, 2000 + seed);
        let one = syev(
            &a,
            EigenRange::All,
            true,
            &OneStageOptions {
                nb: 8,
                method: Method::DivideAndConquer,
            },
        )
        .unwrap();
        let two = SymmetricEigen::new().nb(8).solve(&a).unwrap();
        assert!(
            norms::eigenvalue_distance(&one.eigenvalues, &two.eigenvalues) < 1e-10,
            "seed {seed}"
        );
        // Eigenvectors differ by signs/rotations within degenerate
        // spaces, but both must be valid.
        let z1 = one.eigenvectors.unwrap();
        let z2 = two.eigenvectors.unwrap();
        assert!(norms::eigen_residual(&a, &one.eigenvalues, &z1) < 500.0);
        assert!(norms::eigen_residual(&a, &two.eigenvalues, &z2) < 500.0);
    }
}

#[test]
fn same_subset_bisection() {
    let n = 60;
    let a = gen::random_symmetric(n, 2010);
    let range = EigenRange::Index(10, 25);
    let one = syev(
        &a,
        range,
        true,
        &OneStageOptions {
            nb: 8,
            method: Method::BisectionInverse,
        },
    )
    .unwrap();
    let two = SymmetricEigen::new()
        .nb(8)
        .method(Method::BisectionInverse)
        .range(range)
        .solve(&a)
        .unwrap();
    assert!(norms::eigenvalue_distance(&one.eigenvalues, &two.eigenvalues) < 1e-10);
    assert!(
        norms::eigen_residual(&a, &two.eigenvalues, two.eigenvectors.as_ref().unwrap()) < 500.0
    );
    assert!(
        norms::eigen_residual(&a, &one.eigenvalues, one.eigenvectors.as_ref().unwrap()) < 500.0
    );
}

#[test]
fn values_only_agree() {
    let n = 100;
    let a = gen::random_symmetric(n, 2020);
    let one = syev(&a, EigenRange::All, false, &OneStageOptions::default()).unwrap();
    let two = SymmetricEigen::new()
        .nb(16)
        .vectors(false)
        .solve(&a)
        .unwrap();
    assert!(norms::eigenvalue_distance(&one.eigenvalues, &two.eigenvalues) < 1e-10);
}

#[test]
fn flop_ratio_matches_table1() {
    // Table 1 / §4: the two-stage pipeline's eigenvector update costs
    // ~4 n^3 vs ~2 n^3 one-stage (about 2x total back-transform flops),
    // while both reductions are ~4/3 n^3. Verify with the flop counters
    // on a full-vector solve.
    let n = 160;
    let nb = 16;
    let a = gen::random_symmetric(n, 2030);
    let (_, one) = tseig_kernels::flops::measure(|| {
        syev(
            &a,
            EigenRange::All,
            true,
            &OneStageOptions {
                nb,
                method: Method::DivideAndConquer,
            },
        )
        .unwrap()
    });
    let (_, two) =
        tseig_kernels::flops::measure(|| SymmetricEigen::new().nb(nb).solve(&a).unwrap());
    let n3 = (n as f64).powi(3);
    // Both totals must be O(n^3) with the two-stage roughly 1.2-2.5x the
    // one-stage (the doubled Update-Z plus the bulge-chase extra, minus
    // D&C deflation variance).
    let ratio = two.total() as f64 / one.total() as f64;
    assert!(
        (1.05..3.0).contains(&ratio),
        "two/one flop ratio {ratio} (one {:.2} n^3, two {:.2} n^3)",
        one.total() as f64 / n3,
        two.total() as f64 / n3,
    );
    // The one-stage reduction is dominated by Level-2 (memory-bound)
    // flops; the two-stage pipeline pushes nearly everything to Level 3.
    assert!(
        two.l3 as f64 / two.total() as f64 > 0.80,
        "two-stage L3 fraction {}",
        two.l3 as f64 / two.total() as f64
    );
    // The symv half of latrd is 2/3 n^3 of genuinely Level-2 work (the
    // other 2/3 n^3 is the syr2k trailing update, Level-3 in form but
    // equally bandwidth-hungry — which is why the paper bills the whole
    // 4/3 n^3 at the beta rate).
    assert!(
        one.l2 as f64 >= 0.6 * n3,
        "one-stage L2 flops {:.2} n^3 — symv work missing?",
        one.l2 as f64 / n3
    );
}

#[test]
fn wilkinson_both_pipelines() {
    // Dense matrix with Wilkinson-like clustered spectrum.
    let n = 63;
    let t = gen::wilkinson(n).to_dense();
    let one = syev(
        &t,
        EigenRange::All,
        true,
        &OneStageOptions {
            nb: 8,
            method: Method::Qr,
        },
    )
    .unwrap();
    let two = SymmetricEigen::new()
        .nb(8)
        .method(Method::Qr)
        .solve(&t)
        .unwrap();
    assert!(norms::eigenvalue_distance(&one.eigenvalues, &two.eigenvalues) < 1e-10);
    assert!(norms::orthogonality(two.eigenvectors.as_ref().unwrap()) < 500.0);
}
