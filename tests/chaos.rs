//! Deterministic fault injection through the whole recovery ladder.
//!
//! Built only with `--features chaos` (see the `[[test]]` entry in
//! `crates/core/Cargo.toml`). Each test installs a [`chaos::Plan`],
//! runs a solve, and asserts the failure either *recovered* — residual
//! within the workspace bound and the detour recorded in
//! [`SolveDiagnostics`] — or surfaced as a structured [`Error`]. No
//! panic may escape `solve` in either case.
//!
//! The injection counters are process-global, so every test serialises
//! on [`CHAOS_LOCK`] and resets the plan before releasing it.

use std::sync::Mutex;
use tseig_core::{Recovery, Scheduler, SymmetricEigen, TwoStageResult};
use tseig_matrix::chaos::{self, Plan, Site};
use tseig_matrix::{gen, norms, Error, Matrix};
use tseig_tridiag::{EigenRange, Method};

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with `plan` installed, serialised against other chaos tests,
/// and always reset the global plan afterwards (even if `f` asserts).
fn with_plan<T>(plan: Plan, f: impl FnOnce() -> T) -> T {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    struct ResetOnDrop;
    impl Drop for ResetOnDrop {
        fn drop(&mut self) {
            chaos::reset();
        }
    }
    let _reset = ResetOnDrop;
    chaos::install(plan);
    f()
}

fn residual_ok(a: &Matrix, r: &TwoStageResult) {
    let z = r.eigenvectors.as_ref().expect("vectors");
    let res = norms::eigen_residual(a, &r.eigenvalues, z);
    let orth = norms::orthogonality(z);
    assert!(res < 500.0, "residual {res}");
    assert!(orth < 500.0, "orthogonality {orth}");
}

fn has<F: Fn(&Recovery) -> bool>(r: &TwoStageResult, pred: F) -> bool {
    r.diagnostics.recoveries.iter().any(pred)
}

/// The acceptance-criteria run: one solve absorbs a task panic, a NaN
/// in the secular solver, and a QR convergence failure, and still
/// produces a correct (degraded) answer.
#[test]
fn full_ladder_in_one_solve_dynamic() {
    let a = gen::symmetric_with_spectrum(&gen::linspace(-2.0, 2.0, 80), 11);
    let plan = Plan::new()
        .with(Site::TaskPanic, 1)
        .with(Site::SecularNan, 1)
        .with(Site::QrNoConv, 1);
    let r = with_plan(plan, || {
        SymmetricEigen::new()
            .nb(8)
            .scheduler(Scheduler::Dynamic(4))
            .method(Method::DivideAndConquer)
            .solve(&a)
            .expect("ladder must recover, not fail")
    });
    assert!(r.diagnostics.degraded);
    assert!(
        has(&r, |x| matches!(x, Recovery::SchedulerFallback { .. })),
        "task panic must fall back to the serial stage-2 schedule: {:?}",
        r.diagnostics.recoveries
    );
    assert!(
        has(&r, |x| matches!(x, Recovery::DcFallbackToQr { .. })),
        "secular NaN must re-solve the subproblem by QR: {:?}",
        r.diagnostics.recoveries
    );
    assert!(
        has(&r, |x| matches!(x, Recovery::QrFallbackToBisection { .. })),
        "QR stall must fall back to bisection: {:?}",
        r.diagnostics.recoveries
    );
    residual_ok(&a, &r);
}

#[test]
fn task_panic_recovers_under_static_work_stealing() {
    let a = gen::symmetric_with_spectrum(&gen::linspace(-1.0, 3.0, 64), 12);
    let plan = Plan::new().with(Site::TaskPanic, 1);
    let r = with_plan(plan, || {
        SymmetricEigen::new()
            .nb(8)
            .scheduler(Scheduler::Static(4))
            .solve(&a)
            .expect("recovered solve")
    });
    // Whether the static schedule routed through the task runtime (and
    // hit the injection) or not, the solve must succeed; if the panic
    // fired, it must be visible as a recorded recovery.
    if chaos::reached(Site::TaskPanic) > 0 {
        assert!(has(&r, |x| matches!(x, Recovery::SchedulerFallback { .. })));
        assert!(r.diagnostics.degraded);
    }
    residual_ok(&a, &r);
}

#[test]
fn inverse_iteration_retries_on_injected_stall() {
    let a = gen::symmetric_with_spectrum(&gen::linspace(-1.0, 1.0, 32), 13);
    let plan = Plan::new().with(Site::SteinNoConv, 1);
    let r = with_plan(plan, || {
        SymmetricEigen::new()
            .nb(4)
            .method(Method::BisectionInverse)
            .solve(&a)
            .expect("retry must rescue inverse iteration")
    });
    assert!(
        has(&r, |x| matches!(
            x,
            Recovery::InverseIterationRetry { attempts, .. } if *attempts >= 1
        )),
        "{:?}",
        r.diagnostics.recoveries
    );
    assert!(r.diagnostics.degraded);
    residual_ok(&a, &r);
}

#[test]
fn inverse_iteration_exhaustion_is_a_structured_error() {
    let a = gen::symmetric_with_spectrum(&gen::linspace(-1.0, 1.0, 24), 14);
    // Three injected stalls exhaust the retry budget for one vector.
    let plan = Plan::new().with(Site::SteinNoConv, 3);
    let err = with_plan(plan, || {
        SymmetricEigen::new()
            .nb(4)
            .method(Method::BisectionInverse)
            .solve(&a)
            .expect_err("exhausted retries must surface as an error")
    });
    assert!(
        matches!(err, Error::NoConvergence { .. }),
        "expected NoConvergence, got {err:?}"
    );
}

#[test]
fn bisection_retries_on_injected_nan() {
    let a = gen::symmetric_with_spectrum(&gen::linspace(0.0, 5.0, 28), 15);
    let plan = Plan::new().with(Site::BisectNan, 1);
    let r = with_plan(plan, || {
        SymmetricEigen::new()
            .nb(4)
            .method(Method::BisectionInverse)
            .solve(&a)
            .expect("bisection retry must recover")
    });
    assert!(
        has(&r, |x| matches!(x, Recovery::BisectionRetry { .. })),
        "{:?}",
        r.diagnostics.recoveries
    );
    residual_ok(&a, &r);
}

#[test]
fn qr_method_falls_back_to_bisection() {
    let lambda = gen::linspace(-3.0, 3.0, 40);
    let a = gen::symmetric_with_spectrum(&lambda, 16);
    let plan = Plan::new().with(Site::QrNoConv, 1);
    let r = with_plan(plan, || {
        SymmetricEigen::new()
            .nb(6)
            .method(Method::Qr)
            .solve(&a)
            .expect("QR stall must fall back")
    });
    assert!(has(&r, |x| matches!(
        x,
        Recovery::QrFallbackToBisection { .. }
    )));
    assert!(norms::eigenvalue_distance(&r.eigenvalues, &lambda) < 1e-9);
    residual_ok(&a, &r);
}

#[test]
fn values_only_qr_stall_still_returns_the_spectrum() {
    let lambda = gen::linspace(-1.0, 4.0, 36);
    let a = gen::symmetric_with_spectrum(&lambda, 17);
    let plan = Plan::new().with(Site::QrNoConv, 1);
    let r = with_plan(plan, || {
        SymmetricEigen::new()
            .nb(6)
            .vectors(false)
            .method(Method::Qr)
            .solve(&a)
            .expect("values-only fallback")
    });
    assert!(r.eigenvectors.is_none());
    assert!(has(&r, |x| matches!(
        x,
        Recovery::QrFallbackToBisection { .. }
    )));
    assert!(norms::eigenvalue_distance(&r.eigenvalues, &lambda) < 1e-9);
}

#[test]
fn values_only_subset_survives_bisection_nan() {
    // A values-only index range goes straight to bisection regardless of
    // the configured method — the injected NaN must trigger the retry.
    let a = gen::symmetric_with_spectrum(&gen::linspace(-2.0, 2.0, 30), 18);
    let plan = Plan::new().with(Site::BisectNan, 1);
    let r = with_plan(plan, || {
        SymmetricEigen::new()
            .nb(4)
            .vectors(false)
            .range(EigenRange::Index(0, 6))
            .solve(&a)
            .expect("subset recovery")
    });
    assert_eq!(r.eigenvalues.len(), 6);
    assert!(has(&r, |x| matches!(x, Recovery::BisectionRetry { .. })));
}

#[test]
fn batch_isolates_an_injected_qr_failure() {
    // One forced convergence failure inside a batch: the hit request
    // degrades (QR -> bisection recovery), every other request stays
    // clean, and nothing aborts or errors.
    let plan = Plan::new().with(Site::QrNoConv, 1);
    let inputs: Vec<Matrix> = (0..4).map(|s| gen::random_symmetric(24, 60 + s)).collect();
    let results = with_plan(plan, || {
        tseig_core::BatchDriver::new(SymmetricEigen::new().nb(6).method(Method::Qr))
            .threads(1)
            .solve_all(&inputs)
    });
    let mut degraded = 0usize;
    for (a, r) in inputs.iter().zip(&results) {
        let r = r.as_ref().expect("no request may fail outright");
        residual_ok(a, r);
        if r.diagnostics.degraded {
            degraded += 1;
            assert!(has(r, |x| matches!(
                x,
                Recovery::QrFallbackToBisection { .. }
            )));
        }
    }
    assert_eq!(degraded, 1, "exactly the injected failure degrades");
}

#[test]
fn chol_breakdown_is_rescued_by_shift() {
    // An injected Cholesky breakdown on a perfectly good SPD B: the
    // driver reloads B with a diagonal shift, refactors (the chaos
    // budget is spent), and reports the detour.
    let n = 24;
    let a = gen::random_symmetric(n, 71);
    let b = gen::symmetric_with_spectrum(&gen::linspace(1.0, 3.0, n), 72);
    let plan = Plan::new().with(Site::CholBreakdown, 1);
    let r = with_plan(plan, || {
        tseig_core::solve_generalized(&a, &b, &SymmetricEigen::new().nb(6))
            .expect("shift retry must rescue the injected breakdown")
    });
    assert!(r.diagnostics.degraded);
    assert!(
        has(&r, |x| matches!(x, Recovery::CholeskyShiftRetry { .. })),
        "{:?}",
        r.diagnostics.recoveries
    );
    // The shift is O(n eps ||B||): the pencil residual must stay healthy.
    let x = r.eigenvectors.as_ref().expect("vectors");
    let res = tseig_core::generalized::generalized_residual(&a, &b, &r.eigenvalues, x);
    assert!(res < 500.0, "pencil residual {res}");
}

#[test]
fn chol_breakdown_exhausting_all_shifts_is_a_structured_error() {
    // Enough injected breakdowns to outlast every shift escalation: the
    // driver must surface the original structured error, not panic.
    let n = 16;
    let a = gen::random_symmetric(n, 73);
    let b = gen::symmetric_with_spectrum(&gen::linspace(1.0, 2.0, n), 74);
    let plan = Plan::new().with(Site::CholBreakdown, 4); // initial + 3 retries
    let r = with_plan(plan, || {
        tseig_core::solve_generalized(&a, &b, &SymmetricEigen::new().nb(4))
    });
    match r {
        Err(Error::InvalidArgument(msg)) => {
            assert!(msg.contains("positive definite"), "{msg}")
        }
        other => panic!("expected the Cholesky breakdown error, got {other:?}"),
    }
}

#[test]
fn gen_batch_isolates_an_injected_breakdown() {
    // A mixed batch of pencils with one injected Cholesky breakdown:
    // the hit request degrades through the shift rung, everything else
    // stays clean, and no request errors.
    let pencils: Vec<(Matrix, Matrix)> = (0..4)
        .map(|s| {
            (
                gen::random_symmetric(20, 80 + s),
                gen::symmetric_with_spectrum(&gen::linspace(1.0, 4.0, 20), 90 + s),
            )
        })
        .collect();
    // skip(2): requests 0 and 1 factor cleanly (one potrf tick each on a
    // single worker), request 2 takes the hit, its retry consumes tick 3.
    let plan = Plan::new().with(Site::CholBreakdown, 1).skip(2);
    let results = with_plan(plan, || {
        tseig_core::BatchDriver::new(SymmetricEigen::new().nb(5))
            .threads(1)
            .solve_all_generalized(&pencils)
    });
    let mut degraded = Vec::new();
    for (i, ((a, b), r)) in pencils.iter().zip(&results).enumerate() {
        let r = r.as_ref().expect("no request may fail outright");
        let x = r.eigenvectors.as_ref().expect("vectors");
        let res = tseig_core::generalized::generalized_residual(a, b, &r.eigenvalues, x);
        assert!(res < 500.0, "request {i}: pencil residual {res}");
        if r.diagnostics.degraded {
            degraded.push(i);
            assert!(has(r, |x| matches!(x, Recovery::CholeskyShiftRetry { .. })));
        }
    }
    assert_eq!(degraded, vec![2], "exactly the injected failure degrades");
}

// ---------------------------------------------------------------------
// Request-lifecycle governance under the injected stall.
// ---------------------------------------------------------------------

/// The watchdog regression: one worker wedges inside a checkpoint (the
/// injected stall never yields the heartbeat), the watchdog cancels it
/// cooperatively, and the pool keeps draining. Exactly one stuck-worker
/// detection and — because the quarantined worker then completes its
/// next request on a rebuilt plan — exactly one rescue.
#[test]
fn watchdog_cancels_a_stalled_worker_and_counts_the_rescue() {
    let inputs: Vec<Matrix> = (0..3).map(|s| gen::random_symmetric(24, 200 + s)).collect();
    // A stall far longer than the watchdog interval; it only ends when
    // the watchdog's cancel lands.
    let plan = Plan::new().with(Site::Stall { ticks: 60_000 }, 1);
    let (results, events) = with_plan(plan, || {
        tseig_core::BatchDriver::new(SymmetricEigen::new().nb(4))
            .threads(1)
            .watchdog(std::time::Duration::from_millis(40))
            .solve_all_governed(&inputs)
    });
    assert!(
        matches!(results[0], Err(Error::Cancelled)),
        "the stalled request must be cancelled by the watchdog: {:?}",
        results[0]
    );
    for (i, r) in results.iter().enumerate().skip(1) {
        let r = r.as_ref().expect("sibling requests must stay clean");
        residual_ok(&inputs[i], r);
    }
    assert_eq!(events.stuck, 1, "exactly one watchdog detection");
    assert_eq!(events.rescues, 1, "the quarantined worker must recover");
    let summary =
        tseig_core::BatchSummary::of(&results, std::time::Duration::ZERO).with_events(events);
    assert_eq!(
        (
            summary.stuck_workers,
            summary.worker_rescues,
            summary.failed
        ),
        (1, 1, 1)
    );
}

/// Batch isolation under a per-request deadline: the one stalled
/// request burns through its budget (virtual clock, so the assertion
/// never races real time) and fails structurally; every sibling result
/// is bitwise identical to an ungoverned run.
#[test]
fn stalled_request_exceeds_its_deadline_and_siblings_stay_bitwise_clean() {
    let inputs: Vec<Matrix> = (0..4).map(|s| gen::random_symmetric(24, 210 + s)).collect();
    let eigen = SymmetricEigen::new().nb(4).method(Method::Qr);
    let baseline: Vec<_> = inputs.iter().map(|a| eigen.solve(a).unwrap()).collect();
    let budget = std::time::Duration::from_millis(50);
    let plan = Plan::new().with(Site::Stall { ticks: 60_000 }, 1);
    let (results, _) = with_plan(plan, || {
        tseig_core::BatchDriver::new(eigen.clone())
            .threads(1)
            .deadline(budget)
            .solve_all_governed(&inputs)
    });
    match &results[0] {
        Err(Error::DeadlineExceeded { elapsed, budget: b }) => {
            assert_eq!(*b, budget);
            assert!(*elapsed >= *b);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    for (i, r) in results.iter().enumerate().skip(1) {
        let r = r.as_ref().expect("sibling requests must stay clean");
        assert_eq!(
            r.eigenvalues, baseline[i].eigenvalues,
            "request {i}: eigenvalues drifted under governance"
        );
        assert_eq!(
            r.eigenvectors.as_ref().unwrap().as_slice(),
            baseline[i].eigenvectors.as_ref().unwrap().as_slice(),
            "request {i}: eigenvectors drifted under governance"
        );
    }
    let summary = tseig_core::BatchSummary::of(&results, std::time::Duration::ZERO);
    assert_eq!((summary.deadline_exceeded, summary.failed), (1, 1));
}

/// Deadline overshoot is bounded by one checkpoint interval: the stall
/// advances the virtual clock 1 ms per tick and the checkpoint breaks
/// out as soon as the budget is gone, so the reported `elapsed` lands
/// just past `budget` — nowhere near the 500 ms the uninterrupted stall
/// would have burned.
#[test]
fn deadline_overshoot_is_bounded_by_one_checkpoint_interval() {
    let a = gen::random_symmetric(24, 220);
    let budget = std::time::Duration::from_millis(30);
    let plan = Plan::new().with(Site::Stall { ticks: 500 }, 1);
    let err = with_plan(plan, || {
        SymmetricEigen::new()
            .nb(4)
            .ctrl(tseig_matrix::Ctrl::new().with_deadline(tseig_matrix::Deadline::new(budget)))
            .solve(&a)
            .expect_err("the stalled solve must run out of budget")
    });
    match err {
        Error::DeadlineExceeded { elapsed, budget: b } => {
            assert_eq!(b, budget);
            assert!(elapsed >= budget);
            assert!(
                elapsed <= budget + std::time::Duration::from_millis(100),
                "overshoot {elapsed:?} not bounded by a checkpoint interval"
            );
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
}
